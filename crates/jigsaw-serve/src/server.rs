//! The threaded serving engine: bounded per-model admission queues, a
//! dynamic micro-batcher that coalesces requests along N (up to
//! `max_batch_n` columns or a `max_wait` deadline, whichever first),
//! and a worker pool executing one simulated kernel per batch.
//!
//! Built entirely on `std::sync` — no external runtime. Each request's
//! response carries its proportional share of the batch's simulated
//! cycles plus the real host time it spent queued, so the amortization
//! ledger stays per-request even when the device ran many at once.

use std::collections::HashMap;
use std::collections::VecDeque;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dlmc::Matrix;
use gpu_sim::GpuSpec;
use jigsaw_core::fault::{self, points};
use jigsaw_core::{lock_recover, wait_recover, wait_timeout_recover, PoolStats, WorkspacePool};
use jigsaw_obs::{Span, TraceHandle};

use crate::batch::{split_columns, AdmitError, RequestStats, SpmmResponse};
use crate::breaker::{BreakerAdmit, BreakerConfig, BreakerState, CircuitBreaker};
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;

/// Server configuration.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Simulated device.
    pub spec: GpuSpec,
    /// Maximum total B columns coalesced into one batch.
    pub max_batch_n: usize,
    /// How long a batch may wait for co-riders before dispatching.
    pub max_wait: Duration,
    /// Per-model admission queue capacity (backpressure bound).
    pub queue_cap: usize,
    /// Worker threads.
    pub workers: usize,
    /// Per-model circuit-breaker tuning (host-nanosecond clock).
    pub breaker: BreakerConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            spec: GpuSpec::a100(),
            max_batch_n: 256,
            max_wait: Duration::from_millis(2),
            queue_cap: 64,
            workers: 2,
            breaker: BreakerConfig::host_ns(),
        }
    }
}

/// Server-side failure delivered through a [`Ticket`] — the typed
/// terminal states an admitted request can reach besides completion.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// The registry failed while fetching the model for a batch.
    Registry(String),
    /// Batch assembly or splitting hit a [`crate::batch::BatchError`]
    /// — admission should make this unreachable, so every member of
    /// the batch fails loudly instead of panicking the worker.
    Batch(String),
    /// The server stopped before the request could run.
    Canceled,
    /// The worker executing this request's batch panicked; the panic
    /// was isolated, the worker respawned, and every batch member got
    /// this terminal state instead of hanging.
    WorkerPanic,
    /// The request's deadline expired while it was still queued; it
    /// was shed before dispatch.
    DeadlineExceeded,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Registry(e) => write!(f, "registry failure: {e}"),
            ServeError::Batch(e) => write!(f, "batch assembly failure: {e}"),
            ServeError::Canceled => write!(f, "request canceled by shutdown"),
            ServeError::WorkerPanic => write!(f, "worker panicked while executing the batch"),
            ServeError::DeadlineExceeded => write!(f, "deadline expired before dispatch"),
        }
    }
}

impl std::error::Error for ServeError {}

struct TicketState {
    done: Mutex<Option<Result<SpmmResponse, ServeError>>>,
    cv: Condvar,
}

/// Handle to one in-flight request; `wait` blocks until the worker
/// pool fulfills (or fails) it.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl fmt::Debug for Ticket {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Ticket")
            .field("done", &lock_recover(&self.state.done).is_some())
            .finish()
    }
}

impl Ticket {
    /// Blocks until the response is ready.
    ///
    /// Never hangs: every admitted request reaches a terminal state —
    /// workers complete, fail, or shed their tickets even when a batch
    /// panics mid-execution (the unwind guard fulfills them with
    /// [`ServeError::WorkerPanic`]).
    pub fn wait(self) -> Result<SpmmResponse, ServeError> {
        let mut done = lock_recover(&self.state.done);
        while done.is_none() {
            done = wait_recover(&self.state.cv, done);
        }
        done.take().expect("checked above")
    }

    /// Waits up to `dur` for the response. `None` means the wait timed
    /// out — the request is still in flight and the ticket remains
    /// usable (wait again, or drop it and let the server finish the
    /// work unobserved).
    pub fn wait_timeout(&self, dur: Duration) -> Option<Result<SpmmResponse, ServeError>> {
        let deadline = Instant::now() + dur;
        let mut done = lock_recover(&self.state.done);
        loop {
            if done.is_some() {
                return done.take();
            }
            let remaining = deadline.saturating_duration_since(Instant::now());
            if remaining.is_zero() {
                return None;
            }
            let (g, _) = wait_timeout_recover(&self.state.cv, done, remaining);
            done = g;
        }
    }
}

/// A request's live trace while it moves through the pipeline: the
/// root `serve.request` span, the open `queue` child, and the handle
/// the finished tree is drained from.
struct ReqTrace {
    root: Span,
    queue: Span,
    handle: TraceHandle,
}

struct Pending {
    b: Matrix,
    enqueued: Instant,
    /// Shed (with [`ServeError::DeadlineExceeded`]) if still queued at
    /// this instant.
    deadline: Option<Instant>,
    ticket: Arc<TicketState>,
    trace: Option<ReqTrace>,
}

/// Completes a ticket, first write wins. The `false` return (already
/// fulfilled) keeps the conservation ledger exact when the normal path
/// and the unwind guard race for the same ticket.
fn fulfill(ticket: &TicketState, result: Result<SpmmResponse, ServeError>) -> bool {
    let mut done = lock_recover(&ticket.done);
    if done.is_some() {
        return false;
    }
    *done = Some(result);
    drop(done);
    ticket.cv.notify_all();
    true
}

#[derive(Default)]
struct QueueMap {
    by_model: HashMap<String, VecDeque<Pending>>,
    depth: usize,
}

struct Shared {
    queues: Mutex<QueueMap>,
    cv: Condvar,
    stop: AtomicBool,
    metrics: Mutex<ServeMetrics>,
    /// Per-model circuit breakers on a host-nanosecond clock (measured
    /// from `epoch`). Lock order: never held together with `queues` or
    /// `metrics`.
    breakers: Mutex<HashMap<String, CircuitBreaker>>,
    breaker_cfg: BreakerConfig,
    epoch: Instant,
    /// Batch C/scratch buffers, reused across batches and workers: a
    /// warm server performs zero per-request output allocations.
    pool: WorkspacePool,
}

impl Shared {
    /// The breaker clock: host nanoseconds since server start.
    fn now_ns(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64
    }

    fn breaker_success(&self, model: &str) {
        if let Some(br) = lock_recover(&self.breakers).get_mut(model) {
            br.on_success();
        }
    }

    fn breaker_failure(&self, model: &str) {
        let now = self.now_ns();
        let cfg = self.breaker_cfg;
        lock_recover(&self.breakers)
            .entry(model.to_string())
            .or_insert_with(|| CircuitBreaker::new(cfg))
            .on_failure(now);
    }
}

/// The serving engine. Create with [`Server::start`]; submit requests
/// from any thread; call [`Server::shutdown`] to drain and join.
pub struct Server {
    registry: Arc<ModelRegistry>,
    cfg: ServeConfig,
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Spawns the worker pool.
    pub fn start(registry: Arc<ModelRegistry>, cfg: ServeConfig) -> Server {
        assert!(cfg.workers >= 1, "need at least one worker");
        assert!(cfg.max_batch_n >= 1, "max_batch_n must be positive");
        let shared = Arc::new(Shared {
            queues: Mutex::new(QueueMap::default()),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
            metrics: Mutex::new(ServeMetrics::default()),
            breakers: Mutex::new(HashMap::new()),
            breaker_cfg: cfg.breaker,
            epoch: Instant::now(),
            pool: WorkspacePool::new(),
        });
        let workers = (0..cfg.workers)
            .map(|_| {
                let shared = shared.clone();
                let registry = registry.clone();
                let cfg = cfg.clone();
                // Panic isolation: a panic anywhere in a batch unwinds
                // to here (tickets already terminally fulfilled by the
                // unwind guard), is counted, and the worker re-enters
                // its loop — the pool never shrinks, nothing hangs.
                std::thread::spawn(move || loop {
                    match catch_unwind(AssertUnwindSafe(|| worker_loop(&shared, &registry, &cfg))) {
                        Ok(()) => return,
                        Err(_) => {
                            lock_recover(&shared.metrics).worker_panics += 1;
                            if jigsaw_obs::enabled() {
                                jigsaw_obs::global().counter("serve.worker_panics").inc();
                            }
                        }
                    }
                })
            })
            .collect();
        Server {
            registry,
            cfg,
            shared,
            workers,
        }
    }

    /// Admission control: validates the request against the registry,
    /// the circuit breaker, and the queue bound, then enqueues it.
    /// Rejections are values — the caller sees *why* (backpressure vs.
    /// a malformed request vs. an open breaker).
    pub fn submit(&self, model: &str, b: Matrix) -> Result<Ticket, AdmitError> {
        self.submit_with_deadline(model, b, None)
    }

    /// [`Server::submit`] with a per-request deadline: if the request
    /// is still queued when the deadline elapses, it is shed before
    /// dispatch and its ticket resolves to
    /// [`ServeError::DeadlineExceeded`]. (A request already dispatched
    /// into a batch runs to completion — deadlines bound queue time,
    /// not device time.)
    pub fn submit_with_deadline(
        &self,
        model: &str,
        b: Matrix,
        deadline: Option<Duration>,
    ) -> Result<Ticket, AdmitError> {
        // Per-request trace: the root spans the request's whole life;
        // `admission` covers validation here, `queue` stays open until
        // a worker dispatches the batch. A rejected request's spans are
        // simply dropped with its handle.
        let trace = if jigsaw_obs::enabled() {
            let (root, handle) = Span::trace("serve.request");
            root.attr("model", model);
            root.attr("n", b.cols);
            Some((root, handle))
        } else {
            None
        };
        let admission = trace
            .as_ref()
            .map(|(root, _)| root.child("admission"))
            .unwrap_or_else(Span::disabled);
        let reject = |shared: &Shared, e: AdmitError| {
            lock_recover(&shared.metrics).rejected += 1;
            Err(e)
        };
        if self.shared.stop.load(Ordering::SeqCst) {
            return reject(&self.shared, AdmitError::ShuttingDown);
        }
        let Some(k) = self.registry.model_k(model) else {
            return reject(&self.shared, AdmitError::UnknownModel(model.to_string()));
        };
        // Circuit breaker: a model that keeps failing fast-rejects
        // instead of queuing more doomed work (scoped lock — never
        // held together with queues/metrics).
        {
            let now = self.shared.now_ns();
            let mut breakers = lock_recover(&self.shared.breakers);
            if let Some(br) = breakers.get_mut(model) {
                if let BreakerAdmit::Reject { retry_after } = br.admit(now) {
                    drop(breakers);
                    lock_recover(&self.shared.metrics).breaker_rejects += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("shard.breaker_rejects").inc();
                    }
                    return reject(
                        &self.shared,
                        AdmitError::CircuitOpen {
                            model: model.to_string(),
                            retry_after: Duration::from_nanos(retry_after as u64),
                            shard: None,
                        },
                    );
                }
            }
        }
        if b.cols == 0 {
            return reject(&self.shared, AdmitError::EmptyRequest);
        }
        if b.rows != k {
            return reject(
                &self.shared,
                AdmitError::DimMismatch {
                    model: model.to_string(),
                    expected_k: k,
                    got: b.rows,
                },
            );
        }
        if b.cols > self.cfg.max_batch_n {
            return reject(
                &self.shared,
                AdmitError::TooWide {
                    n: b.cols,
                    max_batch_n: self.cfg.max_batch_n,
                },
            );
        }
        let state = Arc::new(TicketState {
            done: Mutex::new(None),
            cv: Condvar::new(),
        });
        {
            let mut queues = lock_recover(&self.shared.queues);
            let q = queues.by_model.entry(model.to_string()).or_default();
            if q.len() >= self.cfg.queue_cap {
                drop(queues);
                return reject(
                    &self.shared,
                    AdmitError::QueueFull {
                        model: model.to_string(),
                        cap: self.cfg.queue_cap,
                    },
                );
            }
            admission.finish();
            let trace = trace.map(|(root, handle)| {
                let queue = root.child("queue");
                ReqTrace {
                    root,
                    queue,
                    handle,
                }
            });
            let now = Instant::now();
            q.push_back(Pending {
                b,
                enqueued: now,
                deadline: deadline.map(|d| now + d),
                ticket: state.clone(),
                trace,
            });
            queues.depth += 1;
            let depth = queues.depth;
            drop(queues);
            let mut m = lock_recover(&self.shared.metrics);
            m.submitted += 1;
            m.peak_queue_depth = m.peak_queue_depth.max(depth);
        }
        self.shared.cv.notify_one();
        Ok(Ticket { state })
    }

    /// Snapshot of the serving metrics so far, stitched with the live
    /// queue depth and open-breaker count.
    pub fn metrics(&self) -> ServeMetrics {
        let mut m = lock_recover(&self.shared.metrics).clone();
        m.queue_depth = lock_recover(&self.shared.queues).depth;
        let now = self.shared.now_ns();
        m.breakers_open = lock_recover(&self.shared.breakers)
            .values_mut()
            .map(|br| br.state(now))
            .filter(|s| *s != BreakerState::Closed)
            .count() as u64;
        m
    }

    /// Current total queue depth — one lock, no metric cloning. The
    /// shard router polls this per routing decision, so it must stay
    /// cheap.
    pub fn queue_depth(&self) -> usize {
        lock_recover(&self.shared.queues).depth
    }

    /// The named model's breaker state (`None` until its first
    /// failure creates a breaker).
    pub fn breaker_state(&self, model: &str) -> Option<BreakerState> {
        let now = self.shared.now_ns();
        lock_recover(&self.shared.breakers)
            .get_mut(model)
            .map(|br| br.state(now))
    }

    /// Workspace-pool accounting: in steady state `misses` stops
    /// growing — every batch's C/scratch buffers are reused.
    pub fn pool_stats(&self) -> PoolStats {
        self.shared.pool.stats()
    }

    /// The shared registry.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Stops admission, drains every queued request, joins the
    /// workers, and returns the final metrics. Before returning, the
    /// kernel-tuning cost table is persisted into the registry's
    /// artifact directory (when one is configured) so the next server
    /// over the same directory restarts warm — best-effort, a write
    /// failure never fails shutdown.
    pub fn shutdown(mut self) -> ServeMetrics {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        let _ = self.registry.persist_tuning();
        let metrics = self.metrics();
        debug_assert_eq!(
            lock_recover(&self.shared.queues).depth,
            0,
            "shutdown drains every request"
        );
        metrics
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // A dropped (not shut down) server still drains, so no ticket
        // waits forever.
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Picks the model whose head request has waited longest.
fn oldest_head(queues: &QueueMap) -> Option<(String, Instant)> {
    queues
        .by_model
        .iter()
        .filter_map(|(name, q)| q.front().map(|p| (name.clone(), p.enqueued)))
        .min_by_key(|(name, t)| (*t, name.clone()))
}

/// Sheds every queued request whose deadline has passed, fulfilling
/// its ticket with [`ServeError::DeadlineExceeded`]. Returns the shed
/// count; caller accounts it.
fn shed_expired_locked(queues: &mut QueueMap) -> usize {
    let now = Instant::now();
    let mut shed = 0;
    for q in queues.by_model.values_mut() {
        q.retain(|p| {
            let expired = p.deadline.is_some_and(|d| d <= now);
            if expired && fulfill(&p.ticket, Err(ServeError::DeadlineExceeded)) {
                shed += 1;
            }
            !expired
        });
    }
    queues.depth -= shed;
    shed
}

/// The earliest deadline among all queued requests, so batching waits
/// can wake in time to shed.
fn earliest_deadline(queues: &QueueMap) -> Option<Instant> {
    queues
        .by_model
        .values()
        .flat_map(|q| q.iter().filter_map(|p| p.deadline))
        .min()
}

fn worker_loop(shared: &Shared, registry: &ModelRegistry, cfg: &ServeConfig) {
    loop {
        let batch = {
            let mut queues = lock_recover(&shared.queues);
            loop {
                let shed = shed_expired_locked(&mut queues);
                if shed > 0 {
                    // The one permitted nested order: queues → metrics.
                    lock_recover(&shared.metrics).shed_expired += shed as u64;
                }
                let stopping = shared.stop.load(Ordering::SeqCst);
                let Some((model, head_enqueued)) = oldest_head(&queues) else {
                    if stopping {
                        return;
                    }
                    // No head means every queue is empty — nothing can
                    // expire; sleep until the next submit or stop.
                    queues = wait_recover(&shared.cv, queues);
                    continue;
                };
                let q = queues.by_model.get(&model).expect("head exists");
                let queued_n: usize = q.iter().map(|p| p.b.cols).sum();
                let age = head_enqueued.elapsed();
                let full = queued_n >= cfg.max_batch_n;
                if !(full || age >= cfg.max_wait || stopping) {
                    // Hold the batch open for co-riders, but wake at
                    // the window deadline (so the head is never
                    // starved) or the earliest request deadline (so
                    // expired entries shed promptly) — whichever is
                    // sooner.
                    let mut remaining = cfg.max_wait - age;
                    if let Some(d) = earliest_deadline(&queues) {
                        let until = d.saturating_duration_since(Instant::now());
                        remaining = remaining.min(until.max(Duration::from_micros(50)));
                    }
                    let (guard, _) = wait_timeout_recover(&shared.cv, queues, remaining);
                    queues = guard;
                    continue;
                }
                // Dispatch: pop whole requests while they fit.
                let q = queues.by_model.get_mut(&model).expect("head exists");
                let mut members = Vec::new();
                let mut total_n = 0;
                while let Some(front) = q.front() {
                    if !members.is_empty() && total_n + front.b.cols > cfg.max_batch_n {
                        break;
                    }
                    total_n += front.b.cols;
                    members.push(q.pop_front().expect("front exists"));
                }
                queues.depth -= members.len();
                break (model, members);
            }
        };
        execute_batch(shared, registry, cfg, batch);
        // More work may remain; let a peer wake too.
        shared.cv.notify_one();
    }
}

/// Unwind guard for one batch: created before any fallible work, it
/// owns a handle to every member ticket. If the batch unwinds (an
/// injected `serve.worker_batch` panic, a kernel bug, anything), Drop
/// runs mid-unwind, completes every still-unfulfilled ticket with the
/// typed [`ServeError::WorkerPanic`], accounts them as failed, and
/// trips the model's breaker — no waiter ever hangs. The normal path
/// calls [`BatchGuard::disarm`] after the last fulfill.
struct BatchGuard<'a> {
    shared: &'a Shared,
    model: String,
    tickets: Vec<Arc<TicketState>>,
}

impl BatchGuard<'_> {
    fn disarm(mut self) {
        self.tickets.clear();
    }
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        if self.tickets.is_empty() {
            return;
        }
        // Strike the breaker before waking any waiter: a client that
        // observes its failure must also observe the recorded strike
        // (an immediate retry after the threshold sees Open, and the
        // chaos suite's breaker assertions don't race the worker).
        self.shared.breaker_failure(&self.model);
        let mut failed = 0u64;
        for t in &self.tickets {
            if fulfill(t, Err(ServeError::WorkerPanic)) {
                failed += 1;
            }
        }
        lock_recover(&self.shared.metrics).failed += failed;
    }
}

/// Terminal path for batch-level failures before any member has been
/// fulfilled: every ticket gets `err`, the guard is disarmed, the
/// failures are accounted, and the model's breaker records one strike.
fn fail_batch(
    shared: &Shared,
    guard: BatchGuard<'_>,
    members: &[Pending],
    model: &str,
    err: ServeError,
) {
    // Same ordering as the guard's Drop: strike first, then wake.
    shared.breaker_failure(model);
    let mut failed = 0u64;
    for p in members {
        if fulfill(&p.ticket, Err(err.clone())) {
            failed += 1;
        }
    }
    guard.disarm();
    lock_recover(&shared.metrics).failed += failed;
}

fn execute_batch(
    shared: &Shared,
    registry: &ModelRegistry,
    cfg: &ServeConfig,
    (model, members): (String, Vec<Pending>),
) {
    let mut members = members;
    let dispatched = Instant::now();
    let guard = BatchGuard {
        shared,
        model: model.clone(),
        tickets: members.iter().map(|p| p.ticket.clone()).collect(),
    };
    // Injected worker faults land here, inside the guard's cover.
    fault::trip(points::WORKER_BATCH);
    // Close every member's queue span: the wait ends at dispatch.
    for p in &mut members {
        if let Some(t) = &mut p.trace {
            std::mem::replace(&mut t.queue, Span::disabled()).finish();
        }
    }
    // One batch subtree, shared by every member's trace: assembly
    // (fetch — including cold plan phases — plus concat), the kernel
    // with its simulated cycles, and the split back into responses.
    let tracing = members.iter().any(|p| p.trace.is_some());
    let (batch_span, batch_handle) = if tracing {
        let (s, h) = Span::trace("batch");
        s.attr("model", model.as_str());
        s.attr("requests", members.len());
        (s, Some(h))
    } else {
        (Span::disabled(), None)
    };
    let assemble = batch_span.child("assemble");
    let (planned, fetch) = match registry.fetch_traced(&model, &assemble) {
        Ok(pair) => pair,
        Err(e) => {
            let err = ServeError::Registry(e.to_string());
            fail_batch(shared, guard, &members, &model, err);
            return;
        }
    };
    let parts: Vec<&Matrix> = members.iter().map(|p| &p.b).collect();
    let widths: Vec<usize> = parts.iter().map(|p| p.cols).collect();
    let total_n: usize = widths.iter().sum();
    assemble.attr("fused", planned.exec_options.fused_assembly());
    assemble.finish();
    let kernel = batch_span.child("kernel");
    // Pooled batch execution: the batch's C and panel scratch come
    // from (and return to) the server-wide workspace pool. With the
    // model's fused-assembly opt-in the parts are emitted straight
    // into panel-major scratch inside this call (so the assembly cost
    // lands in the kernel span — that merge is the fusion); otherwise,
    // or on any fused failure, it concatenates and runs the two-touch
    // path. Admission validates K and rejects empty requests, so a
    // BatchError here is a server logic bug — fail the batch as a
    // typed error rather than unwinding the worker.
    let (c, fused) = match planned.execute_batch_pooled(&parts, &shared.pool) {
        Ok(pair) => pair,
        Err(e) => {
            let err = ServeError::Batch(e.to_string());
            fail_batch(shared, guard, &members, &model, err);
            return;
        }
    };
    kernel.attr("fused", fused);
    let batch_cycles = planned.simulate(total_n, &cfg.spec).duration_cycles;
    kernel.cycles(batch_cycles);
    kernel.finish();
    let split_span = batch_span.child("split");
    let splits = match split_columns(&c, planned.m(), &widths) {
        Ok(s) => s,
        Err(e) => {
            let err = ServeError::Batch(e.to_string());
            fail_batch(shared, guard, &members, &model, err);
            return;
        }
    };
    split_span.finish();
    drop(c);
    batch_span.attr("n", total_n);
    batch_span.finish();
    let batch_record = batch_handle.and_then(|h| h.take());

    let mut metrics = lock_recover(&shared.metrics);
    metrics.batches += 1;
    metrics.batch_requests_total += members.len() as u64;
    metrics.batch_n_total += total_n as u64;
    metrics.device_cycles += batch_cycles;
    let n_members = members.len();
    for (p, split) in members.into_iter().zip(splits) {
        let share = batch_cycles * p.b.cols as f64 / total_n as f64;
        let queue_host_ns = dispatched.duration_since(p.enqueued).as_nanos() as u64;
        metrics.completed += 1;
        metrics.latency_cycles.record(batch_cycles);
        metrics
            .latency_host_ns
            .record(p.enqueued.elapsed().as_nanos() as f64);
        // Graft the shared batch subtree into this request's trace,
        // close the root, and hand the finished tree back with the
        // response (plus a copy in the global trace ring).
        let trace = p.trace.and_then(|t| {
            if let Some(rec) = &batch_record {
                t.root.add_child_record(rec.clone());
            }
            t.root.finish();
            let rec = t.handle.take();
            if let Some(rec) = &rec {
                jigsaw_obs::global().record_trace(rec.clone());
            }
            rec
        });
        fulfill(
            &p.ticket,
            Ok(SpmmResponse {
                rows: planned.m(),
                cols: p.b.cols,
                c: split,
                stats: RequestStats {
                    device_cycles: share,
                    batch_cycles,
                    batch_requests: n_members,
                    batch_n: total_n,
                    cold: fetch.is_cold(),
                    plan_host_ns: if fetch.is_cold() {
                        planned.plan_host_ns
                    } else {
                        0
                    },
                    queue_host_ns,
                },
                trace,
            }),
        );
    }
    drop(metrics);
    guard.disarm();
    shared.breaker_success(&model);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::RegistryConfig;
    use crate::zoo::default_zoo;
    use dlmc::{dense_rhs, ValueDist};

    fn small_registry() -> Arc<ModelRegistry> {
        let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
        for m in default_zoo(50).into_iter().take(2) {
            reg.register(&m.name, m.weights(), m.config);
        }
        Arc::new(reg)
    }

    #[test]
    fn serves_one_request_end_to_end() {
        let reg = small_registry();
        let server = Server::start(reg.clone(), ServeConfig::default());
        let planned = reg.get("attention-small").unwrap();
        let b = dense_rhs(256, 8, ValueDist::SmallInt, 1);
        let expect = planned.execute(&b);
        let resp = server.submit("attention-small", b).unwrap().wait().unwrap();
        assert_eq!(resp.c, expect, "served result is bit-identical to solo");
        assert_eq!((resp.rows, resp.cols), (256, 8));
        assert!(resp.stats.batch_cycles > 0.0);
        let metrics = server.shutdown();
        assert_eq!(metrics.completed, 1);
        assert_eq!(metrics.rejected, 0);
    }

    #[test]
    fn admission_rejects_are_typed() {
        let reg = small_registry();
        let server = Server::start(
            reg,
            ServeConfig {
                max_batch_n: 16,
                ..ServeConfig::default()
            },
        );
        let err = |r: Result<Ticket, AdmitError>| r.unwrap_err();
        assert_eq!(
            err(server.submit("nope", dense_rhs(256, 4, ValueDist::SmallInt, 1))),
            AdmitError::UnknownModel("nope".into())
        );
        assert!(matches!(
            err(server.submit("attention-small", dense_rhs(64, 4, ValueDist::SmallInt, 1))),
            AdmitError::DimMismatch {
                expected_k: 256,
                got: 64,
                ..
            }
        ));
        assert!(matches!(
            err(server.submit(
                "attention-small",
                dense_rhs(256, 17, ValueDist::SmallInt, 1)
            )),
            AdmitError::TooWide {
                n: 17,
                max_batch_n: 16
            }
        ));
        assert!(matches!(
            err(server.submit(
                "attention-small",
                Matrix {
                    rows: 256,
                    cols: 0,
                    data: vec![]
                }
            )),
            AdmitError::EmptyRequest
        ));
        assert_eq!(server.metrics().rejected, 4);
        server.shutdown();
    }

    #[test]
    fn backpressure_fills_and_rejects() {
        let reg = small_registry();
        // One worker, long batching window, tiny queue: the window
        // holds the worker while we overfill the queue.
        let server = Server::start(
            reg,
            ServeConfig {
                workers: 1,
                queue_cap: 3,
                max_wait: Duration::from_millis(250),
                max_batch_n: 1024,
                ..ServeConfig::default()
            },
        );
        let mut tickets = Vec::new();
        let mut rejected = 0;
        for i in 0..10 {
            match server.submit("attention-small", dense_rhs(256, 2, ValueDist::SmallInt, i)) {
                Ok(t) => tickets.push(t),
                Err(AdmitError::QueueFull { cap: 3, .. }) => rejected += 1,
                Err(e) => panic!("unexpected rejection {e}"),
            }
        }
        assert!(rejected > 0, "queue bound produced backpressure");
        for t in tickets {
            t.wait().unwrap();
        }
        let metrics = server.shutdown();
        assert_eq!(metrics.completed + metrics.rejected, 10);
    }

    #[test]
    fn batching_window_coalesces_requests() {
        let reg = small_registry();
        let server = Server::start(
            reg,
            ServeConfig {
                workers: 1,
                max_wait: Duration::from_millis(200),
                max_batch_n: 1024,
                queue_cap: 64,
                ..ServeConfig::default()
            },
        );
        // Submitted back-to-back, well inside the 200 ms window: the
        // worker must coalesce them into one batch.
        let tickets: Vec<Ticket> = (0..4)
            .map(|i| {
                server
                    .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, i))
                    .unwrap()
            })
            .collect();
        let responses: Vec<SpmmResponse> = tickets.into_iter().map(|t| t.wait().unwrap()).collect();
        assert!(
            responses.iter().any(|r| r.stats.batch_requests >= 2),
            "requests were coalesced"
        );
        for r in &responses {
            assert!(r.stats.device_cycles <= r.stats.batch_cycles);
        }
        let metrics = server.shutdown();
        assert!(metrics.batches < 4, "fewer batches than requests");
        assert!(metrics.avg_batch_occupancy() > 1.0);
    }

    #[test]
    fn served_request_trace_has_admission_to_kernel_chain() {
        jigsaw_obs::set_enabled(true);
        let reg = small_registry();
        let server = Server::start(reg, ServeConfig::default());
        let b = dense_rhs(256, 8, ValueDist::SmallInt, 7);
        let resp = server.submit("attention-small", b).unwrap().wait().unwrap();
        let trace = resp.trace.expect("tracing was enabled at submit");
        assert_eq!(trace.name, "serve.request");
        // The full admission → queue → batch → kernel chain is present.
        for stage in ["admission", "queue", "batch", "kernel"] {
            assert!(trace.find(stage).is_some(), "missing span {stage:?}");
        }
        assert!(trace.span_count() >= 5, "root + 4 nested stages");
        // The batch subtree carries assembly and split alongside the
        // kernel, and the kernel span is annotated with device cycles.
        let batch = trace.find("batch").unwrap();
        assert!(batch.find("assemble").is_some());
        assert!(batch.find("split").is_some());
        let kernel = batch.find("kernel").unwrap();
        assert_eq!(kernel.cycles, Some(resp.stats.batch_cycles));
        // First touch of the model is a cold fetch: the plan's phase
        // spans (each with its own wall time) nest under assembly.
        let assemble = batch.find("assemble").unwrap();
        for phase in ["plan.block_reorder", "plan.tile_reorder", "plan.compress"] {
            assert!(assemble.find(phase).is_some(), "missing phase {phase:?}");
        }
        // The same trace is retrievable from the global ring.
        // (Other tests in this binary may record serve.request traces
        // concurrently, so only existence is asserted here.)
        let from_ring = jigsaw_obs::global()
            .latest_trace("serve.request")
            .expect("trace recorded globally");
        assert!(from_ring.span_count() >= 5);
        server.shutdown();
    }

    #[test]
    fn steady_state_serving_allocates_nothing_per_request() {
        let reg = small_registry();
        let server = Server::start(
            reg,
            ServeConfig {
                workers: 1,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        // Warm-up: the first batch allocates its C and scratch buffers.
        let warm_up = |i| {
            let b = dense_rhs(256, 8, ValueDist::SmallInt, i);
            server.submit("attention-small", b).unwrap().wait().unwrap();
        };
        warm_up(0);
        let cold = server.pool_stats();
        assert!(cold.misses >= 2, "first batch allocates: {cold:?}");
        // Steady state: identical shapes — every acquisition must hit.
        for i in 1..6 {
            warm_up(i);
        }
        let steady = server.pool_stats();
        assert_eq!(
            steady.misses, cold.misses,
            "steady-state batches perform zero C/scratch allocations"
        );
        assert!(steady.hits >= cold.hits + 10, "5 batches x 2 buffers hit");
        server.shutdown();
    }

    /// The zero-alloc pin holds with fused assembly on: the fused path
    /// acquires the same C and panel-scratch shapes from the pool as
    /// the two-touch path, so steady state stays allocation-free — and
    /// the batches really did run fused (`batch.fused_runs` advanced).
    #[test]
    fn steady_state_stays_zero_alloc_with_fused_assembly() {
        let fused = jigsaw_core::ExecOptions::builder()
            .fused_assembly(true)
            .build()
            .unwrap();
        let reg = ModelRegistry::new(RegistryConfig {
            exec_options: fused,
            ..RegistryConfig::default()
        })
        .unwrap();
        for m in default_zoo(50).into_iter().take(2) {
            reg.register(&m.name, m.weights(), m.config);
        }
        let server = Server::start(
            Arc::new(reg),
            ServeConfig {
                workers: 1,
                max_wait: Duration::from_millis(1),
                ..ServeConfig::default()
            },
        );
        let fused_runs_before = jigsaw_obs::global().counter("batch.fused_runs").get();
        let warm_up = |i| {
            let b = dense_rhs(256, 8, ValueDist::SmallInt, i);
            server.submit("attention-small", b).unwrap().wait().unwrap();
        };
        warm_up(0);
        let cold = server.pool_stats();
        assert!(cold.misses >= 2, "first batch allocates: {cold:?}");
        for i in 1..6 {
            warm_up(i);
        }
        let steady = server.pool_stats();
        assert_eq!(
            steady.misses, cold.misses,
            "fused steady-state batches perform zero C/scratch allocations"
        );
        assert!(steady.hits >= cold.hits + 10, "5 batches x 2 buffers hit");
        assert!(
            jigsaw_obs::global().counter("batch.fused_runs").get() >= fused_runs_before + 6,
            "every batch took the fused path"
        );
        server.shutdown();
    }

    #[test]
    fn shutdown_drains_pending_work() {
        let reg = small_registry();
        let server = Server::start(
            reg,
            ServeConfig {
                workers: 1,
                max_wait: Duration::from_secs(5),
                max_batch_n: 1024,
                ..ServeConfig::default()
            },
        );
        let tickets: Vec<Ticket> = (0..3)
            .map(|i| {
                server
                    .submit("embedding-proj", dense_rhs(512, 4, ValueDist::SmallInt, i))
                    .unwrap()
            })
            .collect();
        // Shutdown must cut the 5 s window short and still serve all.
        let handle = std::thread::spawn(move || server.shutdown());
        for t in tickets {
            assert!(t.wait().is_ok(), "drained, not canceled");
        }
        let metrics = handle.join().unwrap();
        assert_eq!(metrics.completed, 3);
    }
}
