//! Per-shard health scoring with outlier ejection and probed
//! re-admission.
//!
//! [`crate::breaker::CircuitBreaker`] answers "is this *model* failing
//! outright"; this module answers "is this *shard* degrading" — the
//! gray-failure case where a shard still completes work but slower (or
//! flakier) than its peers, quietly setting the fleet's p99. Each shard
//! keeps a [`ShardHealth`] fed by completion/failure events; when its
//! EWMA latency or failure rate crosses the configured bounds it is
//! **ejected** and the router steers traffic to other live replicas.
//! Ejection decays on a probe window: after `probe_window` clock units
//! one request is admitted as a probe, and a healthy-looking completion
//! re-admits the shard (DESIGN.md §17).
//!
//! Like the breaker, the clock is an abstract `f64` so one
//! implementation serves both runtimes: the threaded
//! [`crate::shard::router`] feeds host nanoseconds, the virtual-clock
//! [`crate::shard::sim`] feeds cycles. Not internally synchronized —
//! callers hold scorers behind their own locks.

/// Health-scoring policy, in the caller's clock units.
#[derive(Clone, Copy, Debug)]
pub struct HealthConfig {
    /// Master switch. Disabled scorers admit everything and record
    /// nothing, so the default topology stays bit-identical to the
    /// pre-health router/sim.
    pub enabled: bool,
    /// EWMA smoothing factor for latency and failure rate, in (0, 1].
    /// Higher reacts faster; lower rides out noise.
    pub alpha: f64,
    /// Completions to observe before the scorer may eject — a cold
    /// shard's first slow request is not an outlier.
    pub min_samples: u64,
    /// Eject when EWMA latency exceeds this multiple of the fleet
    /// baseline latency the router reports via
    /// [`ShardHealth::observe_baseline`].
    pub latency_factor: f64,
    /// Eject when the EWMA failure rate (failures weighted 1.0,
    /// successes 0.0) exceeds this fraction.
    pub failure_rate: f64,
    /// Clock units an ejected shard sits out before one probe request
    /// is re-admitted.
    pub probe_window: f64,
}

impl HealthConfig {
    /// Scoring disabled: every shard always admits.
    pub fn disabled() -> HealthConfig {
        HealthConfig {
            enabled: false,
            alpha: 0.2,
            min_samples: 16,
            latency_factor: 3.0,
            failure_rate: 0.5,
            probe_window: 1.0,
        }
    }

    /// Defaults for a host-nanosecond clock: α=0.2, 16 warmup samples,
    /// eject at 3× fleet latency or 50% failures, probe after 50 ms.
    pub fn host_ns() -> HealthConfig {
        HealthConfig {
            enabled: true,
            alpha: 0.2,
            min_samples: 16,
            latency_factor: 3.0,
            failure_rate: 0.5,
            probe_window: 50_000_000.0,
        }
    }

    /// Defaults for a device-cycle clock: same shape, probe after 500k
    /// cycles.
    pub fn cycles() -> HealthConfig {
        HealthConfig {
            probe_window: 500_000.0,
            ..HealthConfig::host_ns()
        }
    }
}

/// Routing decision for one shard at one instant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Healthy (or still warming up): route normally.
    Admitted,
    /// Ejected and inside the probe window: steer traffic away.
    Ejected,
    /// Probe window elapsed: admit exactly one request as a probe.
    Probing,
}

/// One shard's health scorer.
#[derive(Clone, Debug)]
pub struct ShardHealth {
    cfg: HealthConfig,
    /// EWMA of completion latency, caller clock units. NaN until the
    /// first completion.
    ewma_latency: f64,
    /// EWMA of the failure indicator (1.0 = failed, 0.0 = completed).
    ewma_failures: f64,
    /// Latest fleet-baseline latency the router told us about.
    baseline: f64,
    samples: u64,
    ejected: bool,
    /// When the current ejection admits a probe.
    probe_at: f64,
    /// A probe is in flight; stay ejected until it reports.
    probing: bool,
    ejections: u64,
}

impl ShardHealth {
    /// A fresh, admitted scorer.
    pub fn new(cfg: HealthConfig) -> ShardHealth {
        ShardHealth {
            cfg,
            ewma_latency: f64::NAN,
            ewma_failures: 0.0,
            baseline: f64::NAN,
            samples: 0,
            ejected: false,
            probe_at: 0.0,
            probing: false,
            ejections: 0,
        }
    }

    /// EWMA completion latency in caller clock units (NaN before the
    /// first completion).
    pub fn ewma_latency(&self) -> f64 {
        self.ewma_latency
    }

    /// EWMA failure rate in [0, 1].
    pub fn failure_rate(&self) -> f64 {
        self.ewma_failures
    }

    /// How many times this shard has been ejected so far.
    pub fn ejections(&self) -> u64 {
        self.ejections
    }

    /// Tells the scorer the fleet's current baseline latency (e.g. the
    /// median of peer EWMAs). Ejection compares against this, so a
    /// uniformly slow fleet ejects nobody.
    pub fn observe_baseline(&mut self, baseline: f64) {
        if baseline.is_finite() && baseline > 0.0 {
            self.baseline = baseline;
        }
    }

    /// Routing state at `now`, advancing Ejected → Probing once the
    /// probe window elapses.
    pub fn state(&mut self, now: f64) -> HealthState {
        if !self.cfg.enabled || !self.ejected {
            return HealthState::Admitted;
        }
        if !self.probing && now >= self.probe_at {
            return HealthState::Probing;
        }
        HealthState::Ejected
    }

    /// Whether the router should send this shard traffic at `now`. A
    /// `true` from the Probing state consumes the probe slot —
    /// followers see `Ejected` until the probe reports back through
    /// [`on_success`](ShardHealth::on_success) /
    /// [`on_failure`](ShardHealth::on_failure).
    pub fn admit(&mut self, now: f64) -> bool {
        match self.state(now) {
            HealthState::Admitted => true,
            HealthState::Probing => {
                self.probing = true;
                true
            }
            HealthState::Ejected => false,
        }
    }

    /// Records a completion with the given latency at `now`. Returns
    /// `true` if this event changed the ejection status (either way).
    pub fn on_success(&mut self, now: f64, latency: f64) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.fold(latency.max(0.0), 0.0);
        self.settle(now)
    }

    /// Records a failure at `now`. Failures carry no latency sample —
    /// only the failure-rate EWMA moves. Returns `true` if the
    /// ejection status changed.
    pub fn on_failure(&mut self, now: f64) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        self.fold(f64::NAN, 1.0);
        self.settle(now)
    }

    fn fold(&mut self, latency: f64, failed: f64) {
        let a = self.cfg.alpha;
        if latency.is_finite() {
            self.ewma_latency = if self.ewma_latency.is_nan() {
                latency
            } else {
                (1.0 - a) * self.ewma_latency + a * latency
            };
        }
        self.ewma_failures = (1.0 - a) * self.ewma_failures + a * failed;
        self.samples = self.samples.saturating_add(1);
    }

    /// Re-evaluates ejection after an event folded in.
    fn settle(&mut self, now: f64) -> bool {
        let was = self.ejected;
        let outlier = self.is_outlier();
        if self.ejected {
            // Any event here is the probe (or a straggler completion)
            // reporting back: re-admit only if the EWMAs have recovered.
            self.probing = false;
            if outlier {
                self.probe_at = now + self.cfg.probe_window;
            } else {
                self.ejected = false;
            }
        } else if self.samples >= self.cfg.min_samples && outlier {
            self.ejected = true;
            self.probing = false;
            self.probe_at = now + self.cfg.probe_window;
            self.ejections += 1;
        }
        self.ejected != was
    }

    fn is_outlier(&self) -> bool {
        if self.ewma_failures > self.cfg.failure_rate {
            return true;
        }
        self.baseline.is_finite()
            && self.ewma_latency.is_finite()
            && self.ewma_latency > self.cfg.latency_factor * self.baseline
    }
}

/// The fleet baseline the router feeds back into each scorer: the
/// median of the finite per-shard EWMA latencies. Median (not mean)
/// so one straggler cannot drag the baseline up and mask itself.
pub fn fleet_baseline(ewmas: &[f64]) -> f64 {
    let mut finite: Vec<f64> = ewmas.iter().copied().filter(|l| l.is_finite()).collect();
    if finite.is_empty() {
        return f64::NAN;
    }
    finite.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies compare"));
    finite[finite.len() / 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HealthConfig {
        HealthConfig {
            enabled: true,
            alpha: 0.5,
            min_samples: 4,
            latency_factor: 3.0,
            failure_rate: 0.5,
            probe_window: 100.0,
        }
    }

    #[test]
    fn disabled_scorer_never_ejects() {
        let mut h = ShardHealth::new(HealthConfig::disabled());
        h.observe_baseline(10.0);
        for t in 0..64 {
            h.on_success(t as f64, 1_000_000.0);
        }
        assert!(h.admit(64.0));
        assert_eq!(h.ejections(), 0);
    }

    #[test]
    fn slow_outlier_is_ejected_after_warmup() {
        let mut h = ShardHealth::new(cfg());
        h.observe_baseline(10.0);
        // Below min_samples nothing happens, however slow.
        for t in 0..3 {
            assert!(!h.on_success(t as f64, 500.0));
            assert!(h.admit(t as f64));
        }
        // The 4th slow completion crosses min_samples and ejects.
        assert!(h.on_success(3.0, 500.0));
        assert!(!h.admit(4.0), "ejected shard refuses traffic");
        assert_eq!(h.ejections(), 1);
    }

    #[test]
    fn uniformly_slow_fleet_ejects_nobody() {
        let mut h = ShardHealth::new(cfg());
        // No baseline observed: latency alone can't eject.
        for t in 0..32 {
            h.on_success(t as f64, 1_000_000.0);
        }
        assert!(h.admit(32.0));
    }

    #[test]
    fn failure_storm_ejects_without_latency_samples() {
        let mut h = ShardHealth::new(cfg());
        for t in 0..3 {
            h.on_failure(t as f64);
        }
        assert!(h.on_failure(3.0), "4th failure crosses min_samples");
        assert!(!h.admit(4.0));
    }

    #[test]
    fn probe_readmits_a_recovered_shard() {
        let mut h = ShardHealth::new(cfg());
        h.observe_baseline(10.0);
        for t in 0..4 {
            h.on_success(t as f64, 500.0);
        }
        assert!(!h.admit(5.0));
        // Probe window not yet elapsed.
        assert!(!h.admit(50.0));
        // Window elapsed: exactly one probe is admitted; followers
        // stay ejected until it reports.
        assert!(h.admit(104.0));
        assert!(!h.admit(105.0));
        // Fast probe completions pull the EWMA back under 3× baseline
        // (α=0.5 halves the gap per sample); the shard re-admits once
        // recovered.
        let mut now = 106.0;
        while !h.on_success(now, 10.0) {
            now += h.cfg.probe_window;
            assert!(h.admit(now), "next probe admitted after the window");
            now += 1.0;
        }
        assert!(h.admit(now), "recovered shard admits traffic");
    }

    #[test]
    fn failed_probe_extends_the_ejection() {
        let mut h = ShardHealth::new(cfg());
        h.observe_baseline(10.0);
        for t in 0..4 {
            h.on_success(t as f64, 500.0);
        }
        assert!(h.admit(104.0), "probe admitted");
        // The probe itself straggles: stay ejected, window re-arms.
        h.on_success(105.0, 500.0);
        assert!(!h.admit(106.0));
        assert!(!h.admit(204.0), "window re-anchored at the failed probe");
        assert!(h.admit(206.0), "next probe after the fresh window");
    }

    #[test]
    fn fleet_baseline_is_the_median() {
        assert!(fleet_baseline(&[]).is_nan());
        assert!(fleet_baseline(&[f64::NAN]).is_nan());
        let b = fleet_baseline(&[10.0, f64::NAN, 5_000.0, 12.0]);
        assert!((b - 12.0).abs() < 1e-9);
    }
}
