//! Hedged requests with a token-bucket retry budget.
//!
//! The tail-at-scale move (DESIGN.md §17): when a request has waited
//! past a delay derived from the fleet's recent p95 latency, submit a
//! speculative duplicate to a different replica shard and take
//! whichever completes first. Hedging converts one straggler's latency
//! into a little extra work — so the extra work must be bounded. The
//! [`RetryBudget`] token bucket accrues `budget_fraction` tokens per
//! primary submission (capped at `burst`) and every hedge spends one
//! whole token, which caps amplification at `1 + budget_fraction` of
//! the offered load no matter how hard the tail misbehaves. No tokens,
//! no hedge, no retry storm.
//!
//! Clock-agnostic like [`crate::breaker`] and [`crate::shard::health`]:
//! latencies and delays are plain `f64`s in whatever units the caller's
//! clock ticks (host nanoseconds in the router, cycles in the sim), and
//! the policy contains no clock reads of its own, so the virtual-clock
//! sim replays hedge decisions bit-identically. Not internally
//! synchronized.

use std::collections::VecDeque;

/// Hedging policy, in the caller's clock units.
#[derive(Clone, Copy, Debug)]
pub struct HedgeConfig {
    /// Master switch. Disabled policies never arm a hedge, so default
    /// topologies stay bit-identical to the pre-hedging router/sim.
    pub enabled: bool,
    /// Latency percentile (0, 1) that sets the hedge delay: a request
    /// older than this quantile of recent completions is hedged.
    pub percentile: f64,
    /// Floor on the hedge delay, so a fast fleet doesn't hedge
    /// everything the moment jitter moves the quantile.
    pub min_delay: f64,
    /// Retry-budget accrual per primary submission (0.1 = hedges may
    /// add at most 10% extra executed work).
    pub budget_fraction: f64,
    /// Token-bucket cap: the largest hedge burst the budget can fund.
    pub burst: f64,
    /// Completion samples required before hedging arms — the quantile
    /// of an empty window is noise, not a signal.
    pub min_samples: usize,
}

impl HedgeConfig {
    /// Hedging disabled.
    pub fn disabled() -> HedgeConfig {
        HedgeConfig {
            enabled: false,
            percentile: 0.95,
            min_delay: 0.0,
            budget_fraction: 0.1,
            burst: 16.0,
            min_samples: 16,
        }
    }

    /// Defaults for a host-nanosecond clock: hedge past the rolling
    /// p95 (≥ 1 ms), budget 10% extra load, burst 16.
    pub fn host_ns() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            percentile: 0.95,
            min_delay: 1_000_000.0,
            budget_fraction: 0.1,
            burst: 16.0,
            min_samples: 16,
        }
    }

    /// Defaults for a device-cycle clock: same shape, delay floor 10k
    /// cycles.
    pub fn cycles() -> HedgeConfig {
        HedgeConfig {
            min_delay: 10_000.0,
            ..HedgeConfig::host_ns()
        }
    }

    /// Overrides the budget fraction (and scales the burst to match a
    /// 160-request horizon), for sweeps that vary amplification.
    pub fn with_budget(mut self, fraction: f64) -> HedgeConfig {
        self.budget_fraction = fraction.max(0.0);
        self.burst = (self.budget_fraction * 160.0).max(1.0);
        self
    }
}

/// Token bucket bounding retry/hedge amplification. Accrues
/// `fraction` tokens per primary request, capped at `burst`; a hedge
/// costs one whole token.
#[derive(Clone, Debug)]
pub struct RetryBudget {
    fraction: f64,
    burst: f64,
    tokens: f64,
}

impl RetryBudget {
    /// An empty bucket with the given accrual rate and cap.
    pub fn new(fraction: f64, burst: f64) -> RetryBudget {
        RetryBudget {
            fraction: fraction.max(0.0),
            burst: burst.max(0.0),
            tokens: 0.0,
        }
    }

    /// Tokens currently available.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Accounts one primary submission: the budget grows by the
    /// configured fraction, up to the burst cap.
    pub fn on_primary(&mut self) {
        self.tokens = (self.tokens + self.fraction).min(self.burst);
    }

    /// Tries to fund one hedge. `true` spends a token; `false` leaves
    /// the bucket untouched (the hedge must not happen).
    pub fn try_spend(&mut self) -> bool {
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Bounded window of recent completion latencies; the hedge delay is
/// its nearest-rank percentile.
const LATENCY_WINDOW: usize = 256;

/// One deployment's hedging state: the rolling latency window plus the
/// retry budget. The router holds one behind its own lock; the sim
/// owns one inline.
#[derive(Clone, Debug)]
pub struct HedgePolicy {
    cfg: HedgeConfig,
    window: VecDeque<f64>,
    budget: RetryBudget,
}

impl HedgePolicy {
    /// A fresh policy with an empty window and an empty budget.
    pub fn new(cfg: HedgeConfig) -> HedgePolicy {
        HedgePolicy {
            cfg,
            window: VecDeque::with_capacity(LATENCY_WINDOW.min(1024)),
            budget: RetryBudget::new(cfg.budget_fraction, cfg.burst),
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &HedgeConfig {
        &self.cfg
    }

    /// Tokens currently in the retry budget.
    pub fn tokens(&self) -> f64 {
        self.budget.tokens()
    }

    /// Accounts one primary submission (accrues budget).
    pub fn on_primary(&mut self) {
        if self.cfg.enabled {
            self.budget.on_primary();
        }
    }

    /// Folds one completion latency into the rolling window.
    pub fn record(&mut self, latency: f64) {
        if !self.cfg.enabled || !latency.is_finite() || latency < 0.0 {
            return;
        }
        if self.window.len() == LATENCY_WINDOW {
            self.window.pop_front();
        }
        self.window.push_back(latency);
    }

    /// The current hedge delay: the configured percentile of the
    /// rolling window, floored at `min_delay`. `None` while hedging is
    /// disarmed (disabled, or the window is still below `min_samples`).
    pub fn hedge_delay(&self) -> Option<f64> {
        if !self.cfg.enabled || self.window.len() < self.cfg.min_samples.max(1) {
            return None;
        }
        let mut sorted: Vec<f64> = self.window.iter().copied().collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies compare"));
        let p = self.cfg.percentile.clamp(0.0, 1.0);
        // Nearest-rank, matching metrics::Histogram::percentile.
        let rank = ((p * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1].max(self.cfg.min_delay))
    }

    /// Tries to fund one hedge from the retry budget. `true` spends a
    /// token.
    pub fn try_hedge(&mut self) -> bool {
        self.cfg.enabled && self.budget.try_spend()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> HedgeConfig {
        HedgeConfig {
            enabled: true,
            percentile: 0.95,
            min_delay: 5.0,
            budget_fraction: 0.5,
            burst: 2.0,
            min_samples: 4,
        }
    }

    #[test]
    fn budget_caps_amplification() {
        let mut b = RetryBudget::new(0.1, 3.0);
        assert!(!b.try_spend(), "empty bucket funds nothing");
        for _ in 0..100 {
            b.on_primary();
        }
        // 100 primaries × 0.1 = 10 tokens, capped at the burst of 3.
        assert!((b.tokens() - 3.0).abs() < 1e-9);
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(b.try_spend());
        assert!(!b.try_spend(), "burst exhausted");
    }

    #[test]
    fn delay_tracks_the_p95_with_a_floor() {
        let mut h = HedgePolicy::new(cfg());
        assert_eq!(h.hedge_delay(), None, "no samples, no hedging");
        for l in [10.0, 20.0, 30.0] {
            h.record(l);
        }
        assert_eq!(h.hedge_delay(), None, "below min_samples");
        h.record(40.0);
        // p95 nearest-rank of {10,20,30,40} is the 4th value.
        assert!((h.hedge_delay().unwrap() - 40.0).abs() < 1e-9);
        // A uniformly fast window hits the floor instead.
        let mut fast = HedgePolicy::new(cfg());
        for _ in 0..8 {
            fast.record(1.0);
        }
        assert!((fast.hedge_delay().unwrap() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn window_is_bounded_and_rolling() {
        let mut h = HedgePolicy::new(cfg());
        for _ in 0..LATENCY_WINDOW {
            h.record(1_000.0);
        }
        // A full window of fresh fast samples displaces the slow past.
        for _ in 0..LATENCY_WINDOW {
            h.record(1.0);
        }
        assert!((h.hedge_delay().unwrap() - 5.0).abs() < 1e-9, "floor");
    }

    #[test]
    fn disabled_policy_never_hedges() {
        let mut h = HedgePolicy::new(HedgeConfig::disabled());
        for _ in 0..64 {
            h.on_primary();
            h.record(100.0);
        }
        assert_eq!(h.hedge_delay(), None);
        assert!(!h.try_hedge());
    }

    #[test]
    fn hedges_spend_the_accrued_budget() {
        let mut h = HedgePolicy::new(cfg());
        assert!(!h.try_hedge(), "no budget yet");
        h.on_primary();
        h.on_primary();
        assert!(h.try_hedge(), "2 × 0.5 = 1 token");
        assert!(!h.try_hedge(), "spent");
    }
}
