//! Sharded serving: a consistent-hash router in front of N independent
//! server shards, with hot-model replication and work stealing.
//!
//! One [`crate::server::Server`] owns one registry, one worker pool,
//! and one queue — a single-shard ceiling. This module scales that
//! stack out (DESIGN.md §14):
//!
//! * [`ring`] — the consistent-hash ring placing model ids on shards;
//! * [`replicate`] — windowed popularity tracking that promotes hot
//!   models onto their ring neighbors and demotes them on cooldown;
//! * [`steal`] — the queue-depth policy that forwards arrivals to the
//!   least-loaded replica and lets idle shards pull queued work;
//! * [`health`] — per-shard EWMA health scoring with outlier ejection
//!   and probed re-admission, for gray failures a breaker can't see;
//! * [`hedge`] — hedged requests past a p95-derived delay, bounded by
//!   a token-bucket retry budget (DESIGN.md §17);
//! * [`router`] — the threaded [`router::ShardRouter`] wrapping N full
//!   server stacks (own registry LRU, workers, breakers, deadlines,
//!   degrade ladder) with failure isolation across shards;
//! * [`sim`] — the deterministic multi-shard virtual-clock simulator
//!   behind `results/BENCH_serving.json`.
//!
//! The failure-isolation contract: a shard-local failure (worker
//! panic, open breaker, or the whole shard killed) never crosses a
//! shard boundary. Requests for models replicated elsewhere fail over;
//! requests with no live replica fail with a typed
//! [`crate::batch::AdmitError::ShardUnavailable`], never a hang.

pub mod health;
pub mod hedge;
pub mod replicate;
pub mod ring;
pub mod router;
pub mod sim;
pub mod steal;

pub use health::{HealthConfig, HealthState, ShardHealth};
pub use hedge::{HedgeConfig, HedgePolicy, RetryBudget};
pub use replicate::{HotEvent, HotTracker, ReplicationConfig};
pub use ring::{fnv1a64, HashRing};
pub use router::{RouterMetrics, ShardRouter};
pub use sim::{simulate_sharded, ShardLane, ShardSimConfig, ShardSimReport};
pub use steal::{least_loaded, should_forward, StealConfig};

/// Topology + policy for one sharded deployment, shared by the
/// threaded router and the simulator.
#[derive(Clone, Debug)]
pub struct ShardConfig {
    /// Number of shards.
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring.
    pub vnodes: usize,
    /// Hot-model replication policy.
    pub replication: ReplicationConfig,
    /// Forward/steal policy.
    pub steal: StealConfig,
    /// Per-shard health scoring / outlier-ejection policy.
    pub health: HealthConfig,
    /// Hedged-request policy with its token-bucket retry budget.
    pub hedge: HedgeConfig,
}

impl ShardConfig {
    /// `shards` shards with the module defaults: 64 vnodes, no
    /// replication, no stealing, no health ejection, no hedging.
    /// Policies opt in via the builders.
    pub fn new(shards: usize) -> ShardConfig {
        ShardConfig {
            shards: shards.max(1),
            vnodes: 64,
            replication: ReplicationConfig::disabled(),
            steal: StealConfig::disabled(),
            health: HealthConfig::disabled(),
            hedge: HedgeConfig::disabled(),
        }
    }

    /// Enables hot-model replication with the given policy.
    pub fn with_replication(mut self, replication: ReplicationConfig) -> ShardConfig {
        self.replication = replication;
        self
    }

    /// Enables forwarding/stealing with the given policy.
    pub fn with_steal(mut self, steal: StealConfig) -> ShardConfig {
        self.steal = steal;
        self
    }

    /// Enables health scoring / outlier ejection with the given policy.
    pub fn with_health(mut self, health: HealthConfig) -> ShardConfig {
        self.health = health;
        self
    }

    /// Enables hedged requests with the given policy.
    pub fn with_hedge(mut self, hedge: HedgeConfig) -> ShardConfig {
        self.hedge = hedge;
        self
    }
}
