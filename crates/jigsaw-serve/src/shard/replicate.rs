//! Hot-model replication policy: windowed per-model request counters
//! decide which models get promoted onto their ring neighbors.
//!
//! The tracker is deliberately clock-agnostic — it takes "now" as an
//! `f64` so the threaded router can feed host nanoseconds while the
//! virtual-clock sim feeds device cycles, and both replay identically
//! for a given request sequence.

use std::collections::{BTreeMap, BTreeSet};

/// Replication policy knobs.
#[derive(Clone, Debug)]
pub struct ReplicationConfig {
    /// Master switch; when off the tracker never promotes.
    pub enabled: bool,
    /// Total replica count for a hot model (home shard included), so
    /// `replicas: 2` means one extra copy on the next ring neighbor.
    pub replicas: usize,
    /// Requests within one window that promote a model to hot.
    pub hot_threshold: u64,
    /// A hot model whose next full window stays *below* this count is
    /// demoted (cooldown). Must be ≤ `hot_threshold`.
    pub cool_threshold: u64,
    /// Window length in clock units (host ns or sim cycles).
    pub window: f64,
}

impl ReplicationConfig {
    /// Policy in host-nanosecond units for the threaded router.
    pub fn host_ns(hot_threshold: u64, replicas: usize, window_ns: u64) -> ReplicationConfig {
        ReplicationConfig {
            enabled: true,
            replicas: replicas.max(1),
            hot_threshold: hot_threshold.max(1),
            cool_threshold: (hot_threshold / 2).max(1),
            window: window_ns as f64,
        }
    }

    /// Policy in device-cycle units for the virtual-clock sim.
    pub fn cycles(hot_threshold: u64, replicas: usize, window_cycles: f64) -> ReplicationConfig {
        ReplicationConfig {
            enabled: true,
            replicas: replicas.max(1),
            hot_threshold: hot_threshold.max(1),
            cool_threshold: (hot_threshold / 2).max(1),
            window: window_cycles,
        }
    }

    /// Replication switched off: every model stays on its home shard.
    pub fn disabled() -> ReplicationConfig {
        ReplicationConfig {
            enabled: false,
            replicas: 1,
            hot_threshold: u64::MAX,
            cool_threshold: 0,
            window: f64::INFINITY,
        }
    }
}

/// Outcome of recording one request against the tracker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HotEvent {
    /// No state change.
    None,
    /// The model just crossed `hot_threshold` and is now replicated.
    Promoted,
    /// The model cooled off at a window roll and lost its replicas.
    Demoted,
}

/// Windowed popularity tracker. `BTreeMap`/`BTreeSet` keep iteration
/// deterministic so promotion order replays exactly per seed.
#[derive(Debug)]
pub struct HotTracker {
    config: ReplicationConfig,
    window_start: f64,
    counts: BTreeMap<String, u64>,
    hot: BTreeSet<String>,
    promotions: u64,
    demotions: u64,
}

impl HotTracker {
    /// A fresh tracker; the first window starts at the first `record`.
    pub fn new(config: ReplicationConfig) -> HotTracker {
        HotTracker {
            config,
            window_start: f64::NAN,
            counts: BTreeMap::new(),
            hot: BTreeSet::new(),
            promotions: 0,
            demotions: 0,
        }
    }

    /// The active policy.
    pub fn config(&self) -> &ReplicationConfig {
        &self.config
    }

    /// Whether `model` currently holds replicas.
    pub fn is_hot(&self, model: &str) -> bool {
        self.hot.contains(model)
    }

    /// Lifetime `(promotions, demotions)`.
    pub fn stats(&self) -> (u64, u64) {
        (self.promotions, self.demotions)
    }

    /// Records one request for `model` at time `now` and reports any
    /// promotion/demotion it caused. Promotion fires mid-window the
    /// moment the threshold is crossed; demotion only happens at a
    /// window roll, so a hot model keeps its replicas for at least the
    /// remainder of the window in which it went hot.
    pub fn record(&mut self, model: &str, now: f64) -> HotEvent {
        if !self.config.enabled {
            return HotEvent::None;
        }
        let mut event = HotEvent::None;
        if self.window_start.is_nan() {
            self.window_start = now;
        }
        if now - self.window_start >= self.config.window {
            // Roll the window: demote hot models that went quiet.
            // (The caller sees at most one demotion event; the counter
            // tracks the full set.)
            let cooled: Vec<String> = self
                .hot
                .iter()
                .filter(|m| {
                    self.counts.get(m.as_str()).copied().unwrap_or(0) < self.config.cool_threshold
                })
                .cloned()
                .collect();
            for m in &cooled {
                self.hot.remove(m);
                self.demotions += 1;
            }
            if !cooled.is_empty() {
                event = HotEvent::Demoted;
            }
            self.counts.clear();
            // Advance in whole windows so bursty gaps don't smear the
            // window boundary.
            let skipped = ((now - self.window_start) / self.config.window).floor();
            self.window_start += skipped * self.config.window;
        }
        let count = self.counts.entry(model.to_string()).or_insert(0);
        *count += 1;
        if *count >= self.config.hot_threshold && self.hot.insert(model.to_string()) {
            self.promotions += 1;
            event = HotEvent::Promoted;
        }
        event
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(hot: u64, window: f64) -> ReplicationConfig {
        ReplicationConfig {
            enabled: true,
            replicas: 2,
            hot_threshold: hot,
            cool_threshold: hot / 2,
            window,
        }
    }

    #[test]
    fn promotes_on_threshold_cross_mid_window() {
        let mut t = HotTracker::new(config(3, 1000.0));
        assert_eq!(t.record("m", 0.0), HotEvent::None);
        assert_eq!(t.record("m", 1.0), HotEvent::None);
        assert_eq!(t.record("m", 2.0), HotEvent::Promoted);
        assert!(t.is_hot("m"));
        // Further traffic is a no-op, not a re-promotion.
        assert_eq!(t.record("m", 3.0), HotEvent::None);
        assert_eq!(t.stats(), (1, 0));
    }

    #[test]
    fn demotes_only_at_window_roll_after_cooldown() {
        let mut t = HotTracker::new(config(4, 100.0));
        for i in 0..4 {
            t.record("m", i as f64);
        }
        assert!(t.is_hot("m"));
        // Next window: one lonely request (< cool_threshold 2). The
        // model survives *this* window and is demoted when the window
        // after it rolls.
        assert_eq!(t.record("m", 150.0), HotEvent::None);
        assert!(t.is_hot("m"));
        assert_eq!(t.record("other", 260.0), HotEvent::Demoted);
        assert!(!t.is_hot("m"));
        assert_eq!(t.stats(), (1, 1));
    }

    #[test]
    fn busy_model_stays_hot_across_windows() {
        let mut t = HotTracker::new(config(4, 100.0));
        for w in 0..5 {
            for i in 0..6 {
                t.record("m", (w * 100 + i) as f64);
            }
        }
        assert!(t.is_hot("m"));
        assert_eq!(t.stats(), (1, 0));
    }

    #[test]
    fn disabled_tracker_never_promotes() {
        let mut t = HotTracker::new(ReplicationConfig::disabled());
        for i in 0..1000 {
            assert_eq!(t.record("m", i as f64), HotEvent::None);
        }
        assert!(!t.is_hot("m"));
    }
}
