//! Consistent-hash ring: maps model ids onto shard ids through a ring
//! of virtual nodes, so adding or removing a shard remaps only ~1/N of
//! the key space instead of reshuffling everything.
//!
//! Deterministic by construction: FNV-1a over stable strings, no
//! RandomState anywhere, so the same `(shards, vnodes)` pair always
//! builds the identical ring and every routing decision replays.

/// The ring's only hash: 64-bit FNV-1a finalized with a splitmix64
/// mix. Plain FNV-1a disperses short, similar keys (`model-17`,
/// `shard/3/vnode/9`) poorly in the high bits that ring ordering
/// compares, so the finalizer avalanches them. Stable across platforms
/// and processes (no seed), which is what lets the virtual-clock sim
/// and the threaded router agree on placement.
pub fn fnv1a64(key: &str) -> u64 {
    let mut x = key.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
    });
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring over `shards` shards, each owning `vnodes`
/// points on the u64 circle.
#[derive(Clone, Debug)]
pub struct HashRing {
    /// `(ring position, shard id)`, sorted by position.
    points: Vec<(u64, usize)>,
    shards: usize,
}

impl HashRing {
    /// Builds the ring. `shards` and `vnodes` must both be ≥ 1.
    pub fn new(shards: usize, vnodes: usize) -> HashRing {
        assert!(shards >= 1, "need at least one shard");
        assert!(vnodes >= 1, "need at least one virtual node per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for v in 0..vnodes {
                points.push((fnv1a64(&format!("shard/{shard}/vnode/{v}")), shard));
            }
        }
        // Position ties (vanishingly rare) break by shard id so the
        // ring is a pure function of (shards, vnodes).
        points.sort();
        HashRing { points, shards }
    }

    /// Number of shards on the ring.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The shard owning `key`: the first virtual node at or clockwise
    /// of the key's ring position (wrapping).
    pub fn shard_for(&self, key: &str) -> usize {
        let h = fnv1a64(key);
        let idx = self.points.partition_point(|(pos, _)| *pos < h);
        self.points[idx % self.points.len()].1
    }

    /// The first `replicas` *distinct* shards clockwise of `key` —
    /// the home shard first, then its ring neighbors. Capped at the
    /// shard count; always non-empty and deduplicated.
    pub fn replica_set(&self, key: &str, replicas: usize) -> Vec<usize> {
        let want = replicas.clamp(1, self.shards);
        let h = fnv1a64(key);
        let start = self.points.partition_point(|(pos, _)| *pos < h);
        let mut out = Vec::with_capacity(want);
        for i in 0..self.points.len() {
            let shard = self.points[(start + i) % self.points.len()].1;
            if !out.contains(&shard) {
                out.push(shard);
                if out.len() == want {
                    break;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_is_deterministic_and_covers_all_shards() {
        let a = HashRing::new(4, 64);
        let b = HashRing::new(4, 64);
        let keys: Vec<String> = (0..256).map(|i| format!("model-{i}")).collect();
        let mut seen = [false; 4];
        for k in &keys {
            assert_eq!(a.shard_for(k), b.shard_for(k), "same ring, same placement");
            seen[a.shard_for(k)] = true;
        }
        assert!(seen.iter().all(|s| *s), "every shard owns some keys");
    }

    #[test]
    fn placement_is_reasonably_balanced() {
        let ring = HashRing::new(8, 64);
        let mut counts = [0usize; 8];
        for i in 0..4096 {
            counts[ring.shard_for(&format!("model-{i}"))] += 1;
        }
        let (min, max) = (*counts.iter().min().unwrap(), *counts.iter().max().unwrap());
        // 64 vnodes keep the spread well under 3x on 4096 keys.
        assert!(max < min * 3, "imbalanced ring: {counts:?}");
    }

    #[test]
    fn replica_sets_are_distinct_and_start_at_home() {
        let ring = HashRing::new(4, 32);
        for i in 0..64 {
            let key = format!("model-{i}");
            let set = ring.replica_set(&key, 2);
            assert_eq!(set.len(), 2);
            assert_eq!(set[0], ring.shard_for(&key), "home shard leads");
            assert_ne!(set[0], set[1], "replicas are distinct shards");
        }
        // Requests for more replicas than shards cap at the shard count.
        let all = ring.replica_set("model-0", 99);
        assert_eq!(all.len(), 4);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2, 3]);
    }

    #[test]
    fn adding_a_shard_remaps_only_a_fraction_of_keys() {
        let before = HashRing::new(4, 64);
        let after = HashRing::new(5, 64);
        let moved = (0..2048)
            .filter(|i| {
                let k = format!("model-{i}");
                before.shard_for(&k) != after.shard_for(&k)
            })
            .count();
        // Consistent hashing moves ~1/5 of keys; a plain `hash % n`
        // would move ~4/5. Allow generous slack.
        assert!(moved < 2048 / 2, "{moved} of 2048 keys moved");
    }

    #[test]
    fn single_shard_ring_routes_everything_home() {
        let ring = HashRing::new(1, 16);
        for i in 0..32 {
            assert_eq!(ring.shard_for(&format!("m{i}")), 0);
            assert_eq!(ring.replica_set(&format!("m{i}"), 3), vec![0]);
        }
    }
}
