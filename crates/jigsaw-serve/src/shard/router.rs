//! The threaded shard router: N independent [`Server`] stacks behind a
//! consistent-hash ring, with hot-model replication, queue-depth
//! forwarding, shard-down failover, and the tail-tolerance layer
//! (DESIGN.md §17): per-shard health scoring with outlier ejection,
//! hedged requests under a token-bucket retry budget, and a
//! kill→revive shard lifecycle.
//!
//! Each shard owns a full server stack — its own registry LRU byte
//! budget, worker pool, per-model circuit breakers, deadlines, and
//! degrade ladder — so a shard-local failure never crosses a shard
//! boundary. The router only *routes*: it holds no model state beyond
//! the popularity tracker, per-model round-robin cursors, and the
//! per-shard health scorers.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::{Duration, Instant};

use dlmc::Matrix;
use jigsaw_core::fault;
use jigsaw_core::sync::lock_recover;
use jigsaw_core::JigsawConfig;

use crate::batch::{AdmitError, SpmmResponse};
use crate::metrics::ServeMetrics;
use crate::registry::{ModelRegistry, RegistryConfig};
use crate::server::{ServeConfig, ServeError, Server, Ticket};
use crate::shard::health::{fleet_baseline, HealthState, ShardHealth};
use crate::shard::hedge::HedgePolicy;
use crate::shard::replicate::{HotEvent, HotTracker};
use crate::shard::ring::HashRing;
use crate::shard::steal::{least_loaded, should_forward};
use crate::shard::ShardConfig;

/// Aggregated router metrics: per-shard server snapshots plus the
/// router's own routing counters.
#[derive(Clone, Debug)]
pub struct RouterMetrics {
    /// One [`Server::metrics`] snapshot per shard (dead shards report
    /// their final drained metrics).
    pub per_shard: Vec<ServeMetrics>,
    /// Requests redirected off their round-robin target to a
    /// less-loaded replica.
    pub forwarded: u64,
    /// Requests that fell over to another replica after their target
    /// shard refused admission (shutting down / killed).
    pub failovers: u64,
    /// Hot-model promotions the popularity tracker performed.
    pub promotions: u64,
    /// Hot-model demotions (cooldown at a window roll).
    pub demotions: u64,
    /// Requests rejected by an injected `shard.route` fault.
    pub route_faults: u64,
    /// Hedged duplicates launched by [`ShardRouter::submit_hedged`].
    pub hedges: u64,
    /// Hedged duplicates that completed before their primary.
    pub hedge_wins: u64,
    /// Shards brought back by [`ShardRouter::revive_shard`].
    pub revived: u64,
}

impl RouterMetrics {
    /// Sum of breaker fast-rejects across shards.
    pub fn breaker_rejects(&self) -> u64 {
        self.per_shard.iter().map(|m| m.breaker_rejects).sum()
    }
}

struct Lane {
    /// `None` after [`ShardRouter::kill_shard`] — the shard is down.
    server: RwLock<Option<Server>>,
    registry: Arc<ModelRegistry>,
    /// Final metrics captured when the shard was killed.
    last_metrics: Mutex<ServeMetrics>,
}

/// The shard router. Create with [`ShardRouter::start`], register
/// models (they land on every shard's registry; residency follows
/// traffic), submit from any thread, and [`ShardRouter::shutdown`] to
/// drain.
pub struct ShardRouter {
    config: ShardConfig,
    /// Kept so [`ShardRouter::revive_shard`] can restart a killed
    /// shard's server stack with the original serving policy.
    serve_cfg: ServeConfig,
    ring: HashRing,
    lanes: Vec<Lane>,
    hot: Mutex<HotTracker>,
    /// Per-model round-robin cursor over the model's replica set.
    cursors: Mutex<BTreeMap<String, usize>>,
    /// One health scorer per shard, on the host-nanosecond clock.
    health: Vec<Mutex<ShardHealth>>,
    /// Rolling latency window + retry budget for hedged submits.
    hedge: Mutex<HedgePolicy>,
    epoch: Instant,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    promotions: AtomicU64,
    demotions: AtomicU64,
    route_faults: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    revived: AtomicU64,
}

impl ShardRouter {
    /// Spawns `config.shards` independent server stacks. Every shard
    /// gets its own registry built from `registry_cfg` (share an
    /// `artifact_dir` to let one shard's plan warm the others from
    /// disk) and its own worker pool from `serve_cfg`.
    pub fn start(
        config: ShardConfig,
        registry_cfg: RegistryConfig,
        serve_cfg: ServeConfig,
    ) -> ShardRouter {
        let ring = HashRing::new(config.shards, config.vnodes);
        let lanes = (0..config.shards)
            .map(|_| {
                let registry = Arc::new(
                    ModelRegistry::new(registry_cfg.clone()).expect("registry artifact dir"),
                );
                Lane {
                    server: RwLock::new(Some(Server::start(registry.clone(), serve_cfg.clone()))),
                    registry,
                    last_metrics: Mutex::new(ServeMetrics::default()),
                }
            })
            .collect();
        ShardRouter {
            hot: Mutex::new(HotTracker::new(config.replication.clone())),
            health: (0..config.shards)
                .map(|_| Mutex::new(ShardHealth::new(config.health)))
                .collect(),
            hedge: Mutex::new(HedgePolicy::new(config.hedge)),
            config,
            serve_cfg,
            ring,
            lanes,
            cursors: Mutex::new(BTreeMap::new()),
            epoch: Instant::now(),
            forwarded: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            demotions: AtomicU64::new(0),
            route_faults: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            revived: AtomicU64::new(0),
        }
    }

    /// Registers a model on **every** shard's registry. Registration
    /// is metadata-only (planning is lazy), so the cost of N-way
    /// registration is one weights clone per shard; each shard's LRU
    /// only ever plans the models its traffic actually touches.
    pub fn register(&self, name: &str, weights: Matrix, config: JigsawConfig) {
        for lane in &self.lanes {
            lane.registry.register(name, weights.clone(), config);
        }
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.config.shards
    }

    /// The home shard the ring assigns to `model`.
    pub fn home_shard(&self, model: &str) -> usize {
        self.ring.shard_for(model)
    }

    /// Whether `model` currently holds replicas.
    pub fn is_hot(&self, model: &str) -> bool {
        lock_recover(&self.hot).is_hot(model)
    }

    /// The shard ids `model` may be served from right now (home shard
    /// first; grows to the ring-neighbor replica set while hot).
    pub fn replica_set(&self, model: &str) -> Vec<usize> {
        if self.is_hot(model) {
            self.ring
                .replica_set(model, self.config.replication.replicas)
        } else {
            vec![self.ring.shard_for(model)]
        }
    }

    /// Kills one shard: takes its server out of service and drains it
    /// (queued requests resolve with typed errors — no waiter hangs).
    /// Requests homed there fail over to live replicas; models with no
    /// replica reject with [`AdmitError::ShardUnavailable`]. Returns
    /// the shard's final metrics, or `None` if already down.
    pub fn kill_shard(&self, shard: usize) -> Option<ServeMetrics> {
        let server = lock_recover_write(&self.lanes[shard].server).take()?;
        let metrics = server.shutdown();
        *lock_recover(&self.lanes[shard].last_metrics) = metrics.clone();
        if jigsaw_obs::enabled() {
            jigsaw_obs::global().counter("shard.killed").inc();
        }
        Some(metrics)
    }

    /// Revives a killed shard: restarts a fresh server stack on the
    /// shard's retained registry (plans persisted to the artifact dir
    /// rewarm from disk) and resets its health scorer so the revived
    /// shard is routable immediately. The pre-kill metrics stay
    /// available through [`ShardRouter::metrics`] until the new stack's
    /// first snapshot replaces them. Idempotent: returns `false` if the
    /// shard is already live.
    pub fn revive_shard(&self, shard: usize) -> bool {
        {
            let mut guard = lock_recover_write(&self.lanes[shard].server);
            if guard.is_some() {
                return false;
            }
            *guard = Some(Server::start(
                self.lanes[shard].registry.clone(),
                self.serve_cfg.clone(),
            ));
        }
        *lock_recover(&self.health[shard]) = ShardHealth::new(self.config.health);
        self.revived.fetch_add(1, Ordering::Relaxed);
        if jigsaw_obs::enabled() {
            jigsaw_obs::global().counter("shard.revived").inc();
        }
        true
    }

    /// Routes and submits one request. The routing pipeline:
    /// 1. resolve the model's live replica set (popularity tracker
    ///    promotes/demotes here),
    /// 2. round-robin a target replica,
    /// 3. if the target's queue depth crosses the steal threshold,
    ///    forward to the least-loaded live replica,
    /// 4. submit; a shard that refuses because it is down fails over
    ///    to the next live replica.
    pub fn submit(&self, model: &str, b: Matrix) -> Result<Ticket, AdmitError> {
        self.submit_with_deadline(model, b, None)
    }

    /// [`ShardRouter::submit`] with a per-request dispatch deadline
    /// (bounds queue time on whichever shard admits the request).
    pub fn submit_with_deadline(
        &self,
        model: &str,
        b: Matrix,
        deadline: Option<Duration>,
    ) -> Result<Ticket, AdmitError> {
        self.route_and_submit(model, b, deadline).map(|(_, t)| t)
    }

    /// The full routing pipeline; returns the shard that admitted the
    /// request alongside its ticket so the hedging/health layer can
    /// attribute the outcome.
    fn route_and_submit(
        &self,
        model: &str,
        b: Matrix,
        deadline: Option<Duration>,
    ) -> Result<(usize, Ticket), AdmitError> {
        let home = self.ring.shard_for(model);
        // Injected routing fault: the router rejects before touching
        // any shard — typed, counted, isolated.
        if fault::armed() && fault::hit(fault::points::SHARD_ROUTE).is_err() {
            self.route_faults.fetch_add(1, Ordering::Relaxed);
            if jigsaw_obs::enabled() {
                jigsaw_obs::global().counter("shard.route_faults").inc();
            }
            return Err(AdmitError::ShardUnavailable {
                model: model.to_string(),
                shard: home,
            });
        }
        let now_ns = self.epoch.elapsed().as_nanos() as f64;
        match lock_recover(&self.hot).record(model, now_ns) {
            HotEvent::Promoted => {
                self.promotions.fetch_add(1, Ordering::Relaxed);
                if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("shard.promotions").inc();
                }
            }
            HotEvent::Demoted => {
                self.demotions.fetch_add(1, Ordering::Relaxed);
                if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("shard.demotions").inc();
                }
            }
            HotEvent::None => {}
        }
        let replicas = self.replica_set(model);
        let live: Vec<usize> = replicas
            .iter()
            .copied()
            .filter(|&s| lock_recover_read(&self.lanes[s].server).is_some())
            .collect();
        if live.is_empty() {
            return Err(AdmitError::ShardUnavailable {
                model: model.to_string(),
                shard: home,
            });
        }

        // Health-aware steering: drop ejected shards from the
        // candidate set. If every replica is ejected, fail over to any
        // healthy live shard (every shard's registry holds every model
        // — residency is a cache question, not a capability one); if
        // the whole fleet is ejected, ignore health rather than strand
        // traffic.
        let not_ejected =
            |&s: &usize| lock_recover(&self.health[s]).state(now_ns) != HealthState::Ejected;
        let mut candidates: Vec<usize> = live.iter().copied().filter(not_ejected).collect();
        if candidates.is_empty() {
            candidates = (0..self.config.shards)
                .filter(|&s| lock_recover_read(&self.lanes[s].server).is_some())
                .filter(not_ejected)
                .collect();
            if candidates.is_empty() {
                candidates = live.clone();
            } else if jigsaw_obs::enabled() {
                jigsaw_obs::global().counter("health.reroutes").inc();
            }
        }

        // Round-robin over the healthy live replicas.
        let cursor = {
            let mut cursors = lock_recover(&self.cursors);
            let c = cursors.entry(model.to_string()).or_insert(0);
            *c = c.wrapping_add(1);
            *c
        };
        let mut target = candidates[cursor % candidates.len()];

        // Queue-depth forwarding: an overloaded target sheds the new
        // arrival to the least-loaded live replica. An injected
        // `shard.forward` fault degrades to the original target — the
        // request still runs, the redirect just doesn't happen.
        if self.config.steal.enabled && candidates.len() > 1 {
            let depth_of = |s: usize| {
                lock_recover_read(&self.lanes[s].server)
                    .as_ref()
                    .map_or(usize::MAX, |srv| srv.queue_depth())
            };
            let target_depth = depth_of(target);
            if let Some(best) = least_loaded(&candidates, depth_of) {
                if best != target
                    && should_forward(&self.config.steal, target_depth, depth_of(best))
                {
                    if fault::armed() && fault::hit(fault::points::SHARD_FORWARD).is_err() {
                        if jigsaw_obs::enabled() {
                            jigsaw_obs::global().counter("shard.forward_faults").inc();
                        }
                    } else {
                        target = best;
                        self.forwarded.fetch_add(1, Ordering::Relaxed);
                        if jigsaw_obs::enabled() {
                            jigsaw_obs::global().counter("shard.forwarded").inc();
                        }
                    }
                }
            }
        }

        // Injected straggler latency: a `shard.slow` fault stalls the
        // submit path (host sleep), inflating the observed latency the
        // health scorer and hedge window see — the threaded twin of the
        // sim's per-shard cost multiplier.
        if fault::armed() {
            if let Some(fired) = fault::fire(fault::points::SHARD_SLOW) {
                if let fault::FaultKind::Latency { ns } = fired.kind {
                    std::thread::sleep(Duration::from_nanos(ns));
                }
            }
        }

        // Submit, failing over across the remaining candidates if a
        // shard shut down between the liveness check and admission.
        let mut tried = Vec::with_capacity(candidates.len());
        tried.push(target);
        for attempt in 0..candidates.len() {
            let shard = if attempt == 0 {
                target
            } else {
                match candidates.iter().find(|s| !tried.contains(s)) {
                    Some(&s) => {
                        tried.push(s);
                        self.failovers.fetch_add(1, Ordering::Relaxed);
                        if jigsaw_obs::enabled() {
                            jigsaw_obs::global().counter("shard.failovers").inc();
                        }
                        s
                    }
                    None => break,
                }
            };
            // Route one request to a probing shard: consuming the probe
            // slot keeps followers off it until the probe reports back.
            lock_recover(&self.health[shard]).admit(now_ns);
            let guard = lock_recover_read(&self.lanes[shard].server);
            let Some(server) = guard.as_ref() else {
                continue;
            };
            match server.submit_with_deadline(model, b.clone(), deadline) {
                Ok(ticket) => return Ok((shard, ticket)),
                // The shard died under us: try the next replica.
                Err(AdmitError::ShuttingDown) => continue,
                // Attribute the tripped breaker to its owning shard.
                Err(AdmitError::CircuitOpen {
                    model, retry_after, ..
                }) => {
                    return Err(AdmitError::CircuitOpen {
                        model,
                        retry_after,
                        shard: Some(shard),
                    })
                }
                Err(e) => return Err(e),
            }
        }
        Err(AdmitError::ShardUnavailable {
            model: model.to_string(),
            shard: home,
        })
    }

    /// Submits one request and waits for it with tail tolerance: if
    /// the response sits past the hedge delay (the rolling p95 of
    /// recent completions, floored by the config), a speculative
    /// duplicate is submitted to a different healthy shard and the
    /// first completion wins. The duplicate carries the **remainder of
    /// the original deadline** — never a fresh window — and every hedge
    /// spends a token from the retry budget, so hedging can never
    /// amplify offered load past `1 + budget_fraction`.
    ///
    /// Cancellation is cooperative: the loser's ticket is dropped and
    /// its shard finishes (or sheds) the work unobserved — SpMM
    /// requests are read-only against registry state, so a duplicated
    /// execution is wasted cycles, never a correctness hazard.
    ///
    /// The outer `Result` is admission (routing/queue/breaker), the
    /// inner one execution. Completion latency and outcome feed the
    /// winning shard's health scorer and the hedge window; the plain
    /// [`ShardRouter::submit`] ticket path stays fire-and-forget and
    /// feeds neither.
    pub fn submit_hedged(
        &self,
        model: &str,
        b: Matrix,
        deadline: Option<Duration>,
    ) -> Result<Result<SpmmResponse, ServeError>, AdmitError> {
        let t0 = Instant::now();
        let (shard, ticket) = self.route_and_submit(model, b.clone(), deadline)?;
        lock_recover(&self.hedge).on_primary();
        let delay = lock_recover(&self.hedge).hedge_delay();
        let Some(delay_ns) = delay else {
            // Hedging disarmed (disabled or still warming): plain wait.
            let res = ticket.wait();
            self.observe(shard, t0, &res);
            return Ok(res);
        };
        if let Some(res) = ticket.wait_timeout(Duration::from_nanos(delay_ns as u64)) {
            self.observe(shard, t0, &res);
            return Ok(res);
        }
        // Past the hedge delay: fund a duplicate from the retry budget
        // and place it on a different healthy shard, propagating what
        // is left of the original deadline.
        let dup = if lock_recover(&self.hedge).try_hedge() {
            self.hedge_target(model, shard).and_then(|t| {
                let remaining = deadline.map(|d| d.saturating_sub(t0.elapsed()));
                let guard = lock_recover_read(&self.lanes[t].server);
                let ticket = guard
                    .as_ref()
                    .and_then(|srv| srv.submit_with_deadline(model, b.clone(), remaining).ok())?;
                self.hedges.fetch_add(1, Ordering::Relaxed);
                if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("hedge.launched").inc();
                }
                Some((t, ticket))
            })
        } else {
            if jigsaw_obs::enabled() {
                jigsaw_obs::global().counter("hedge.suppressed").inc();
            }
            None
        };
        let Some((dup_shard, dup_ticket)) = dup else {
            let res = ticket.wait();
            self.observe(shard, t0, &res);
            return Ok(res);
        };
        // First-completion-wins: poll both tickets; the loser is
        // dropped (its shard completes the work unobserved).
        let poll = Duration::from_micros(100);
        loop {
            if let Some(res) = ticket.wait_timeout(poll) {
                self.observe(shard, t0, &res);
                return Ok(res);
            }
            if let Some(res) = dup_ticket.wait_timeout(poll) {
                self.hedge_wins.fetch_add(1, Ordering::Relaxed);
                if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("hedge.wins").inc();
                }
                self.observe(dup_shard, t0, &res);
                return Ok(res);
            }
        }
    }

    /// Feeds one request outcome into the health scorer of the shard
    /// that produced it, refreshes the fleet latency baseline, and (on
    /// success) folds the latency into the hedge window.
    fn observe(&self, shard: usize, t0: Instant, res: &Result<SpmmResponse, ServeError>) {
        let now_ns = self.epoch.elapsed().as_nanos() as f64;
        let latency = t0.elapsed().as_nanos() as f64;
        {
            let mut h = lock_recover(&self.health[shard]);
            let before = h.ejections();
            let changed = match res {
                Ok(_) => h.on_success(now_ns, latency),
                Err(_) => h.on_failure(now_ns),
            };
            if changed && jigsaw_obs::enabled() {
                let name = if h.ejections() > before {
                    "health.ejections"
                } else {
                    "health.readmissions"
                };
                jigsaw_obs::global().counter(name).inc();
            }
        }
        if res.is_ok() {
            lock_recover(&self.hedge).record(latency);
        }
        let ewmas: Vec<f64> = self
            .health
            .iter()
            .map(|h| lock_recover(h).ewma_latency())
            .collect();
        let baseline = fleet_baseline(&ewmas);
        for h in &self.health {
            lock_recover(h).observe_baseline(baseline);
        }
    }

    /// Picks the shard a hedged duplicate should land on: the
    /// least-loaded live, non-ejected shard other than the primary,
    /// preferring the model's replica set (warm plans) over the rest
    /// of the fleet.
    fn hedge_target(&self, model: &str, primary: usize) -> Option<usize> {
        let now_ns = self.epoch.elapsed().as_nanos() as f64;
        let pick = |set: &[usize]| {
            let eligible: Vec<usize> = set
                .iter()
                .copied()
                .filter(|&s| s != primary)
                .filter(|&s| lock_recover_read(&self.lanes[s].server).is_some())
                .filter(|&s| lock_recover(&self.health[s]).state(now_ns) != HealthState::Ejected)
                .collect();
            least_loaded(&eligible, |s| {
                lock_recover_read(&self.lanes[s].server)
                    .as_ref()
                    .map_or(usize::MAX, |srv| srv.queue_depth())
            })
        };
        pick(&self.replica_set(model))
            .or_else(|| pick(&(0..self.config.shards).collect::<Vec<usize>>()))
    }

    /// Snapshot of per-shard and router metrics.
    pub fn metrics(&self) -> RouterMetrics {
        let per_shard = self
            .lanes
            .iter()
            .map(|lane| match lock_recover_read(&lane.server).as_ref() {
                Some(server) => server.metrics(),
                None => lock_recover(&lane.last_metrics).clone(),
            })
            .collect();
        RouterMetrics {
            per_shard,
            forwarded: self.forwarded.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            route_faults: self.route_faults.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            revived: self.revived.load(Ordering::Relaxed),
        }
    }

    /// Drains and joins every live shard; returns the final metrics.
    pub fn shutdown(self) -> RouterMetrics {
        let mut per_shard = Vec::with_capacity(self.lanes.len());
        for lane in &self.lanes {
            let final_metrics = match lock_recover_write(&lane.server).take() {
                Some(server) => server.shutdown(),
                None => lock_recover(&lane.last_metrics).clone(),
            };
            per_shard.push(final_metrics);
        }
        RouterMetrics {
            per_shard,
            forwarded: self.forwarded.load(Ordering::Relaxed),
            failovers: self.failovers.load(Ordering::Relaxed),
            promotions: self.promotions.load(Ordering::Relaxed),
            demotions: self.demotions.load(Ordering::Relaxed),
            route_faults: self.route_faults.load(Ordering::Relaxed),
            hedges: self.hedges.load(Ordering::Relaxed),
            hedge_wins: self.hedge_wins.load(Ordering::Relaxed),
            revived: self.revived.load(Ordering::Relaxed),
        }
    }
}

fn lock_recover_read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

fn lock_recover_write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::replicate::ReplicationConfig;
    use crate::shard::steal::StealConfig;
    use crate::zoo::scaled_zoo;
    use dlmc::{dense_rhs, ValueDist};

    fn router(
        shards: usize,
        replication: ReplicationConfig,
    ) -> (ShardRouter, Vec<crate::zoo::ZooModel>) {
        let zoo = scaled_zoo(8, 21);
        let router = ShardRouter::start(
            ShardConfig::new(shards)
                .with_replication(replication)
                .with_steal(StealConfig::threshold(8)),
            RegistryConfig::default(),
            ServeConfig {
                workers: 1,
                max_wait: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        );
        for m in &zoo {
            router.register(&m.name, m.weights(), m.config);
        }
        (router, zoo)
    }

    #[test]
    fn routes_serve_and_results_match_reference() {
        let (router, zoo) = router(4, ReplicationConfig::disabled());
        let mut tickets = Vec::new();
        for (i, m) in zoo.iter().enumerate() {
            let b = dense_rhs(m.k(), 4, ValueDist::SmallInt, i as u64);
            tickets.push((m, b.clone(), router.submit(&m.name, b).unwrap()));
        }
        for (m, b, t) in tickets {
            let r = t.wait().expect("request served");
            assert_eq!(r.rows, m.m());
            assert_eq!(r.c, m.weights().matmul_reference(&b), "routed result exact");
        }
        let metrics = router.shutdown();
        let total: u64 = metrics.per_shard.iter().map(|m| m.completed).sum();
        assert_eq!(total, zoo.len() as u64);
        assert!(
            metrics.per_shard.iter().filter(|m| m.submitted > 0).count() > 1,
            "traffic spread over shards"
        );
    }

    #[test]
    fn routing_is_stable_per_model() {
        let (router, zoo) = router(4, ReplicationConfig::disabled());
        for m in &zoo {
            let home = router.home_shard(&m.name);
            for _ in 0..3 {
                assert_eq!(router.home_shard(&m.name), home);
            }
            assert_eq!(router.replica_set(&m.name), vec![home]);
        }
        router.shutdown();
    }

    #[test]
    fn hot_model_gains_replicas_and_round_robins() {
        let (router, zoo) = router(4, ReplicationConfig::host_ns(8, 2, 60_000_000_000));
        let hot = &zoo[0];
        let mut tickets = Vec::new();
        for i in 0..32 {
            let b = dense_rhs(hot.k(), 2, ValueDist::SmallInt, i);
            tickets.push(router.submit(&hot.name, b).unwrap());
        }
        for t in tickets {
            t.wait().expect("served");
        }
        assert!(router.is_hot(&hot.name), "threshold crossed");
        let set = router.replica_set(&hot.name);
        assert_eq!(set.len(), 2, "hot model spans two shards");
        let metrics = router.shutdown();
        assert_eq!(metrics.promotions, 1);
        let served: Vec<u64> = set
            .iter()
            .map(|&s| metrics.per_shard[s].submitted)
            .collect();
        assert!(
            served.iter().all(|&c| c > 0),
            "round-robin hit both replicas: {served:?}"
        );
    }

    #[test]
    fn killed_shard_fails_over_for_replicated_models() {
        let (router, zoo) = router(4, ReplicationConfig::host_ns(4, 2, 60_000_000_000));
        let hot = &zoo[0];
        for i in 0..8 {
            router
                .submit(&hot.name, dense_rhs(hot.k(), 2, ValueDist::SmallInt, i))
                .unwrap()
                .wait()
                .expect("served before kill");
        }
        assert!(router.is_hot(&hot.name));
        let home = router.home_shard(&hot.name);
        assert!(router.kill_shard(home).is_some());
        assert!(router.kill_shard(home).is_none(), "idempotent");
        // The dead home shard no longer serves, but the replica does.
        let t = router
            .submit(&hot.name, dense_rhs(hot.k(), 2, ValueDist::SmallInt, 99))
            .expect("replica admits");
        t.wait().expect("replica serves");
        let metrics = router.shutdown();
        assert!(metrics.per_shard[home].conserves(), "dead shard drained");
    }

    #[test]
    fn revive_restores_service_on_a_dead_shard() {
        let (router, zoo) = router(2, ReplicationConfig::disabled());
        let victim = &zoo[0];
        let home = router.home_shard(&victim.name);
        assert!(router.kill_shard(home).is_some());
        assert!(!router.revive_shard(1 - home), "live shard is a no-op");
        assert!(router.revive_shard(home), "revive restarts the stack");
        assert!(!router.revive_shard(home), "idempotent");
        router
            .submit(
                &victim.name,
                dense_rhs(victim.k(), 2, ValueDist::SmallInt, 7),
            )
            .expect("revived shard admits")
            .wait()
            .expect("revived shard serves");
        let metrics = router.shutdown();
        assert_eq!(metrics.revived, 1);
    }

    #[test]
    fn hedged_submit_serves_plain_when_hedging_is_disabled() {
        let (router, zoo) = router(2, ReplicationConfig::disabled());
        let m = &zoo[0];
        let b = dense_rhs(m.k(), 2, ValueDist::SmallInt, 3);
        let res = router
            .submit_hedged(&m.name, b.clone(), None)
            .expect("admitted")
            .expect("served");
        assert_eq!(res.c, m.weights().matmul_reference(&b), "result exact");
        let metrics = router.shutdown();
        assert_eq!(metrics.hedges, 0, "hedging is opt-in");
    }

    #[test]
    fn unreplicated_model_on_dead_shard_rejects_typed() {
        let (router, zoo) = router(2, ReplicationConfig::disabled());
        let victim = &zoo[0];
        let home = router.home_shard(&victim.name);
        router.kill_shard(home);
        let err = router
            .submit(
                &victim.name,
                dense_rhs(victim.k(), 2, ValueDist::SmallInt, 1),
            )
            .unwrap_err();
        assert_eq!(
            err,
            AdmitError::ShardUnavailable {
                model: victim.name.clone(),
                shard: home,
            }
        );
        // Models homed on the surviving shard still serve.
        let survivor = zoo
            .iter()
            .find(|m| router.home_shard(&m.name) != home)
            .expect("two shards split eight models");
        router
            .submit(
                &survivor.name,
                dense_rhs(survivor.k(), 2, ValueDist::SmallInt, 2),
            )
            .unwrap()
            .wait()
            .expect("isolation: surviving shard unaffected");
        router.shutdown();
    }
}
