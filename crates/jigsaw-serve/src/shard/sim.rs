//! Deterministic multi-shard virtual-clock simulation: N simulated
//! devices behind the consistent-hash ring, with hot-model
//! replication, queue-depth forwarding, and idle-shard work stealing —
//! the policy engine behind `results/BENCH_serving.json`.
//!
//! Determinism contract: the only clock is the cycle counter; shard
//! state lives in `BTreeMap`s; every tie (event time, head age, steal
//! victim) breaks by id/name; and kernel costs come from a warm
//! registry via a memo table keyed on `(model, batch N)`. Same
//! `(schedule, config, warm registry)` ⇒ bit-identical report. The
//! registry **must be warmed** (`warm_all`) — a cold fetch would
//! charge measured host time to the virtual timeline and break
//! replayability; `simulate_sharded` asserts this by treating any
//! cold fetch as a logic error in debug builds.
//!
//! Scale: requests only carry `(model, arrival, n)` — no operand
//! bytes — and the cost memo collapses repeated `(model, n)` batch
//! shapes into one `simulate` call, so driving a ~10⁶-user zipf
//! population through hundreds of thousands of requests stays cheap.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use jigsaw_core::fault;

use crate::breaker::{BreakerAdmit, BreakerState, CircuitBreaker};
use crate::metrics::{Histogram, ServeMetrics};
use crate::registry::ModelRegistry;
use crate::shard::health::{fleet_baseline, HealthState, ShardHealth};
use crate::shard::hedge::HedgePolicy;
use crate::shard::replicate::{HotEvent, HotTracker};
use crate::shard::ring::HashRing;
use crate::shard::steal::{least_loaded, should_forward};
use crate::shard::ShardConfig;
use crate::sim::{SimConfig, SimRequest};

/// Multi-shard simulation config: the shard topology/policies plus the
/// per-shard serving policy (batching window, breaker, device spec).
#[derive(Clone, Debug)]
pub struct ShardSimConfig {
    /// Topology and replication/steal policies. The replication window
    /// and thresholds are on the **cycle** clock here.
    pub shard: ShardConfig,
    /// Per-shard serving policy; every shard gets an identical device.
    pub sim: SimConfig,
    /// Straggler injection: per-shard device-cycle cost multipliers
    /// (shard → factor). Config-driven rather than wall-clock-driven —
    /// `FaultKind::Latency` sleeps host time, which would break the
    /// virtual clock — so straggler schedules replay bit-identically.
    pub stragglers: BTreeMap<usize, f64>,
}

impl ShardSimConfig {
    /// A sharded sim with no stragglers injected.
    pub fn new(shard: ShardConfig, sim: SimConfig) -> ShardSimConfig {
        ShardSimConfig {
            shard,
            sim,
            stragglers: BTreeMap::new(),
        }
    }

    /// Injects `shard` as a straggler: every batch it executes costs
    /// `factor`× the modeled device cycles.
    pub fn with_straggler(mut self, shard: usize, factor: f64) -> ShardSimConfig {
        self.stragglers.insert(shard, factor.max(0.0));
        self
    }
}

/// Per-shard outcome of a sharded run.
#[derive(Clone, Debug)]
pub struct ShardLane {
    /// Shard id (ring position owner).
    pub shard: usize,
    /// This shard's serving metrics (its own breakers, queues, device).
    pub metrics: ServeMetrics,
    /// Arrivals redirected *to another shard* because this home/target
    /// was over the queue threshold.
    pub forwarded_out: u64,
    /// Queued requests another shard pulled from this one.
    pub stolen_from: u64,
    /// Cycles this shard's device spent busy.
    pub busy_cycles: f64,
}

/// Result of a sharded virtual-clock run.
#[derive(Clone, Debug)]
pub struct ShardSimReport {
    /// One lane per shard.
    pub lanes: Vec<ShardLane>,
    /// Cluster-wide latency across all completed requests, cycles.
    pub latency_cycles: Histogram,
    /// Total completed / failed / shed / rejected over all shards.
    pub totals: ServeMetrics,
    /// Requests forwarded at admission (sender-initiated).
    pub forwarded: u64,
    /// Requests moved by idle-shard stealing (receiver-initiated).
    pub stolen: u64,
    /// Hot-model promotions / demotions.
    pub promotions: u64,
    /// Demotions at window rolls.
    pub demotions: u64,
    /// Hedged duplicates launched (each funded by one retry-budget
    /// token).
    pub hedges: u64,
    /// Hedged requests whose duplicate completed before the primary.
    pub hedge_wins: u64,
    /// Hedged copies cancelled unexecuted at dispatch because the
    /// other copy already resolved — cancellation costs zero cycles.
    pub hedge_cancels: u64,
    /// Hedged copies that executed after the other copy had already
    /// resolved: the bounded waste the retry budget paid for.
    pub hedge_wasted: u64,
    /// Health-scorer ejection events across all shards.
    pub health_ejections: u64,
    /// Finish time of the last batch anywhere, cycles.
    pub makespan_cycles: f64,
}

impl ShardSimReport {
    /// Completed requests per 10⁹ cycles of elapsed virtual time.
    pub fn requests_per_gcycle(&self) -> f64 {
        if self.makespan_cycles <= 0.0 {
            0.0
        } else {
            self.totals.completed as f64 / (self.makespan_cycles / 1e9)
        }
    }
}

#[derive(Clone, Copy)]
struct Queued<'a> {
    req: &'a SimRequest,
    /// `true` for a hedged duplicate: it never carries ledger counts
    /// (submitted/completed accounting stays with the request id, not
    /// the copy) and is dropped at dispatch if the id already resolved.
    dup: bool,
}

/// One shard's mutable state.
struct Shard<'a> {
    queues: BTreeMap<String, VecDeque<Queued<'a>>>,
    breakers: BTreeMap<String, CircuitBreaker>,
    free_at: f64,
    busy_cycles: f64,
    metrics: ServeMetrics,
    forwarded_out: u64,
    stolen_from: u64,
}

impl<'a> Shard<'a> {
    fn depth(&self) -> usize {
        self.queues.values().map(|q| q.len()).sum()
    }
}

/// The dispatch decision one shard would take at time `now`: which
/// model queue fires, when, and whether the batch is already full.
fn decide(
    shard: &Shard<'_>,
    cfg: &SimConfig,
    now: f64,
    more_arrivals: bool,
) -> Option<(String, f64)> {
    let (model, q) =
        shard
            .queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by(|(na, qa), (nb, qb)| {
                let (a, b) = (
                    qa.front().expect("non-empty"),
                    qb.front().expect("non-empty"),
                );
                a.req
                    .arrival_cycle
                    .partial_cmp(&b.req.arrival_cycle)
                    .expect("finite arrivals")
                    .then(a.req.id.cmp(&b.req.id))
                    .then(na.cmp(nb))
            })?;
    let mut queued_n = 0usize;
    let mut queued_reqs = 0usize;
    for p in q.iter() {
        if queued_reqs + 1 > cfg.max_batch_requests
            || (queued_reqs > 0 && queued_n + p.req.n > cfg.max_batch_n)
        {
            break;
        }
        queued_reqs += 1;
        queued_n += p.req.n;
    }
    let full = queued_reqs >= cfg.max_batch_requests
        || queued_n >= cfg.max_batch_n
        || queued_reqs == q.len() && !more_arrivals;
    let head = q.front().expect("non-empty").req;
    let head_deadline = head
        .deadline_cycles
        .map_or(f64::INFINITY, |d| head.arrival_cycle + d);
    let window_closes = (head.arrival_cycle + cfg.max_wait_cycles).min(head_deadline);
    let dispatch_at = if full {
        now.max(shard.free_at)
    } else {
        now.max(shard.free_at).max(window_closes)
    };
    Some((model.clone(), dispatch_at))
}

/// Runs a schedule across `cfg.shard.shards` simulated shards.
///
/// Routing per arrival: the popularity tracker records the model
/// (promoting/demoting), the live replica set is resolved on the ring,
/// a per-model round-robin cursor picks the target, and an
/// over-threshold target forwards to the least-loaded replica. Between
/// dispatches, an idle shard with a free device steals the back half
/// of the deepest over-threshold peer's queue for a model it
/// replicates. Every shard runs the same batching/breaker policy as
/// the single-shard [`crate::sim::simulate_schedule`].
pub fn simulate_sharded(
    registry: &ModelRegistry,
    schedule: &[SimRequest],
    cfg: &ShardSimConfig,
) -> ShardSimReport {
    assert!(cfg.sim.max_batch_n >= 1 && cfg.sim.max_batch_requests >= 1);
    let n_shards = cfg.shard.shards;
    let ring = HashRing::new(n_shards, cfg.shard.vnodes);
    let mut order: Vec<&SimRequest> = schedule.iter().collect();
    order.sort_by(|a, b| {
        a.arrival_cycle
            .partial_cmp(&b.arrival_cycle)
            .expect("finite arrivals")
            .then(a.id.cmp(&b.id))
    });

    let mut shards: Vec<Shard<'_>> = (0..n_shards)
        .map(|_| Shard {
            queues: BTreeMap::new(),
            breakers: BTreeMap::new(),
            free_at: 0.0,
            busy_cycles: 0.0,
            metrics: ServeMetrics::default(),
            forwarded_out: 0,
            stolen_from: 0,
        })
        .collect();
    let mut hot = HotTracker::new(cfg.shard.replication.clone());
    let mut cursors: BTreeMap<String, usize> = BTreeMap::new();
    // Kernel-cost memo: cycles for one batch of (model, total_n). This
    // is what makes ~10⁶-user sweeps feasible — repeated batch shapes
    // cost one BTreeMap probe, not a device-model evaluation. The key
    // deliberately omits the model's assembly mode: fused batched-B
    // assembly changes host-side copies, not the simulated device
    // kernel, so a (model, n) cell is valid under either
    // `ExecOptions::fused_assembly` setting carried by the registry.
    let mut cost: BTreeMap<(String, usize), Option<f64>> = BTreeMap::new();
    let mut latency = Histogram::default();
    let mut forwarded = 0u64;
    let mut stolen = 0u64;
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    let mut makespan = 0.0f64;

    // Tail-tolerance state (DESIGN.md §17). All of it is inert when the
    // health/hedge policies are disabled, so default topologies stay
    // bit-identical to the pre-§17 simulator.
    let mut health: Vec<ShardHealth> = (0..n_shards)
        .map(|_| ShardHealth::new(cfg.shard.health))
        .collect();
    let mut hedge = HedgePolicy::new(cfg.shard.hedge);
    // Ids whose hedge decision is spent (launched, suppressed for lack
    // of budget, or no eligible target) — each id is decided once.
    let mut hedged: BTreeSet<usize> = BTreeSet::new();
    // Hedged ids whose ledger event (complete/fail/shed) has fired; the
    // surviving copy of a resolved id is dropped unexecuted at dispatch.
    let mut resolved: BTreeSet<usize> = BTreeSet::new();
    // Which shard's ledger currently holds each hedged id's `submitted`
    // count (maintained through steals).
    let mut origin: BTreeMap<usize, usize> = BTreeMap::new();
    let mut hedges = 0u64;
    let mut hedge_wins = 0u64;
    let mut hedge_cancels = 0u64;
    let mut hedge_wasted = 0u64;
    let mut health_ejections = 0u64;

    loop {
        // --- Admit + route every arrival at or before `now`. ---
        while next_arrival < order.len() && order[next_arrival].arrival_cycle <= now {
            let req = order[next_arrival];
            next_arrival += 1;
            match hot.record(&req.model, req.arrival_cycle) {
                HotEvent::Promoted if jigsaw_obs::enabled() => {
                    jigsaw_obs::global().counter("shard.promotions").inc();
                }
                HotEvent::Demoted if jigsaw_obs::enabled() => {
                    jigsaw_obs::global().counter("shard.demotions").inc();
                }
                _ => {}
            }
            let replicas = if hot.is_hot(&req.model) {
                ring.replica_set(&req.model, cfg.shard.replication.replicas)
            } else {
                vec![ring.shard_for(&req.model)]
            };
            // Health-aware steering: drop ejected shards from the
            // candidate set. If every replica is ejected, fail over to
            // any healthy shard (the registry is shared, so capability
            // is fleet-wide); if the whole fleet is ejected, ignore
            // health rather than strand the arrival.
            let mut candidates: Vec<usize> = replicas
                .iter()
                .copied()
                .filter(|&s| health[s].state(now) != HealthState::Ejected)
                .collect();
            if candidates.is_empty() {
                candidates = (0..n_shards)
                    .filter(|&s| health[s].state(now) != HealthState::Ejected)
                    .collect();
                if candidates.is_empty() {
                    candidates = replicas.clone();
                } else if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("health.reroutes").inc();
                }
            }
            let cursor = cursors.entry(req.model.clone()).or_insert(0);
            *cursor = cursor.wrapping_add(1);
            let mut target = candidates[*cursor % candidates.len()];
            // Sender-initiated forwarding off an over-threshold target.
            if cfg.shard.steal.enabled && candidates.len() > 1 {
                let target_depth = shards[target].depth();
                if let Some(best) = least_loaded(&candidates, |s| shards[s].depth()) {
                    if best != target
                        && should_forward(&cfg.shard.steal, target_depth, shards[best].depth())
                    {
                        shards[target].forwarded_out += 1;
                        forwarded += 1;
                        if jigsaw_obs::enabled() {
                            jigsaw_obs::global().counter("shard.forwarded").inc();
                        }
                        target = best;
                    }
                }
            }
            // Routing one arrival to a probing shard consumes its probe
            // slot: followers see it ejected until the probe reports.
            health[target].admit(now);
            let lane = &mut shards[target];
            if let Some(br) = lane.breakers.get_mut(&req.model) {
                if let BreakerAdmit::Reject { .. } = br.admit(now) {
                    lane.metrics.rejected += 1;
                    lane.metrics.breaker_rejects += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("shard.breaker_rejects").inc();
                    }
                    continue;
                }
            }
            lane.queues
                .entry(req.model.clone())
                .or_default()
                .push_back(Queued { req, dup: false });
            lane.metrics.submitted += 1;
            hedge.on_primary();
            let depth = lane.depth();
            lane.metrics.peak_queue_depth = lane.metrics.peak_queue_depth.max(depth);
        }

        // --- Receiver-initiated stealing: an idle, free shard pulls
        // the back half of the deepest over-threshold peer queue for a
        // model whose replica set includes it. ---
        if cfg.shard.steal.enabled && n_shards > 1 {
            for thief in 0..n_shards {
                if shards[thief].depth() > 0 || shards[thief].free_at > now {
                    continue;
                }
                // Deepest victim first; ties break low.
                let Some(victim) = (0..n_shards)
                    .filter(|&s| s != thief && shards[s].depth() >= cfg.shard.steal.queue_threshold)
                    .max_by_key(|&s| (shards[s].depth(), usize::MAX - s))
                else {
                    continue;
                };
                // First model (name order) in the victim's queues that
                // the thief replicates.
                let movable: Option<String> = shards[victim]
                    .queues
                    .iter()
                    .find(|(name, q)| {
                        q.len() > 1
                            && hot.is_hot(name)
                            && ring
                                .replica_set(name, cfg.shard.replication.replicas)
                                .contains(&thief)
                    })
                    .map(|(name, _)| name.clone());
                let Some(model) = movable else { continue };
                let q = shards[victim].queues.get_mut(&model).expect("found above");
                let take = q.len() / 2;
                let moved: Vec<Queued<'_>> = (0..take).filter_map(|_| q.pop_back()).collect();
                if q.is_empty() {
                    shards[victim].queues.remove(&model);
                }
                shards[victim].stolen_from += take as u64;
                stolen += take as u64;
                if jigsaw_obs::enabled() {
                    jigsaw_obs::global()
                        .counter("shard.stolen")
                        .add(take as u64);
                }
                // Stolen work changes accounting shard: admit on the
                // thief, un-admit on the victim. Hedged duplicates
                // carry no ledger counts, so only primaries transfer;
                // a moved hedged primary re-homes its ledger too.
                let ledgered = moved.iter().filter(|qd| !qd.dup).count() as u64;
                for qd in moved.iter().filter(|qd| !qd.dup) {
                    if hedged.contains(&qd.req.id) {
                        origin.insert(qd.req.id, thief);
                    }
                }
                shards[victim].metrics.submitted -= ledgered;
                let thief_lane = &mut shards[thief];
                thief_lane.metrics.submitted += ledgered;
                let tq = thief_lane.queues.entry(model).or_default();
                // Preserve arrival order on the thief.
                for qd in moved.into_iter().rev() {
                    tq.push_back(qd);
                }
                let depth = thief_lane.depth();
                thief_lane.metrics.peak_queue_depth =
                    thief_lane.metrics.peak_queue_depth.max(depth);
            }
        }

        // --- Launch due hedges: a primary that has waited past the
        // p95-derived delay gets a duplicate on another healthy shard,
        // funded by one retry-budget token. The duplicate carries the
        // request itself — original arrival, original deadline — so
        // deadline checks anchor at the original submission, never a
        // fresh window. One decision per id; denial (no budget, no
        // target) is final so the scan always makes progress. ---
        let hedge_delay = hedge.hedge_delay();
        if let Some(delay) = hedge_delay {
            loop {
                let mut due: Option<(usize, String, &SimRequest)> = None;
                'scan: for (s, lane) in shards.iter().enumerate() {
                    for (model, q) in &lane.queues {
                        for qd in q {
                            if qd.dup
                                || hedged.contains(&qd.req.id)
                                || now - qd.req.arrival_cycle < delay
                            {
                                continue;
                            }
                            due = Some((s, model.clone(), qd.req));
                            break 'scan;
                        }
                    }
                }
                let Some((s, model, req)) = due else { break };
                hedged.insert(req.id);
                // Target: a healthy shard other than the primary's,
                // preferring the model's replica set (warm residency).
                let replica_pool = if hot.is_hot(&model) {
                    ring.replica_set(&model, cfg.shard.replication.replicas)
                } else {
                    Vec::new()
                };
                let mut eligible = |pool: &[usize]| -> Vec<usize> {
                    pool.iter()
                        .copied()
                        .filter(|&t| t != s && health[t].state(now) != HealthState::Ejected)
                        .collect()
                };
                let mut pool = eligible(&replica_pool);
                if pool.is_empty() {
                    pool = eligible(&(0..n_shards).collect::<Vec<usize>>());
                }
                let Some(target) = least_loaded(&pool, |t| shards[t].depth()) else {
                    continue;
                };
                if !hedge.try_hedge() {
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("hedge.suppressed").inc();
                    }
                    continue;
                }
                origin.insert(req.id, s);
                hedges += 1;
                if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("hedge.launched").inc();
                }
                let lane = &mut shards[target];
                lane.queues
                    .entry(model)
                    .or_default()
                    .push_back(Queued { req, dup: true });
                let depth = lane.depth();
                lane.metrics.peak_queue_depth = lane.metrics.peak_queue_depth.max(depth);
            }
        }

        // --- Pick the next event: earliest shard dispatch vs arrival. ---
        let more_arrivals = next_arrival < order.len();
        let next_dispatch: Option<(f64, usize, String)> = shards
            .iter()
            .enumerate()
            .filter_map(|(s, lane)| {
                decide(lane, &cfg.sim, now, more_arrivals).map(|(m, at)| (at, s, m))
            })
            .min_by(|a, b| {
                a.0.partial_cmp(&b.0)
                    .expect("finite dispatch times")
                    .then(a.1.cmp(&b.1))
            });
        // The earliest future instant a queued primary crosses the
        // hedge delay — hedge launches are events too, or a straggler's
        // victim would wait for the next dispatch to get its duplicate.
        let next_hedge_at: Option<f64> = hedge_delay.and_then(|delay| {
            shards
                .iter()
                .flat_map(|lane| lane.queues.values().flatten())
                .filter(|qd| !qd.dup && !hedged.contains(&qd.req.id))
                .map(|qd| qd.req.arrival_cycle + delay)
                .filter(|&t| t > now)
                .min_by(|a, b| a.partial_cmp(b).expect("finite hedge times"))
        });

        let Some((dispatch_at, s, model)) = next_dispatch else {
            // Nothing queued anywhere: jump to the next arrival or end.
            match order.get(next_arrival) {
                Some(req) => {
                    now = now.max(req.arrival_cycle);
                    continue;
                }
                None => break,
            }
        };
        // An arrival or a hedge instant before the dispatch may join a
        // batch or change routing — advance to it and re-decide.
        if let Some(next) = order.get(next_arrival) {
            if next.arrival_cycle <= dispatch_at {
                let t = next.arrival_cycle;
                now = next_hedge_at.filter(|&h| h < t).unwrap_or(t);
                continue;
            }
        }
        if let Some(h) = next_hedge_at {
            if h < dispatch_at {
                now = h;
                continue;
            }
        }

        // --- Execute the dispatch on shard `s` (same batch semantics
        // as the single-shard simulator, plus §17 cancellation: a copy
        // whose request id already resolved elsewhere pops for free).
        // ---
        let mut members: Vec<Queued<'_>> = Vec::new();
        let mut total_n = 0usize;
        let mut shed_plain = 0u64;
        let mut shed_hedged: Vec<usize> = Vec::new();
        {
            let lane = &mut shards[s];
            let q = lane.queues.get_mut(&model).expect("decided above");
            while let Some(front) = q.front().copied() {
                let id = front.req.id;
                if resolved.contains(&id) {
                    // First-completion-wins: the other copy already
                    // resolved, so this one cancels unexecuted.
                    q.pop_front();
                    hedge_cancels += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("hedge.cancels").inc();
                    }
                    continue;
                }
                let expired = front
                    .req
                    .deadline_cycles
                    .is_some_and(|d| dispatch_at > front.req.arrival_cycle + d);
                if expired {
                    q.pop_front();
                    if origin.contains_key(&id) {
                        resolved.insert(id);
                        shed_hedged.push(id);
                    } else {
                        shed_plain += 1;
                    }
                    continue;
                }
                if members.len() + 1 > cfg.sim.max_batch_requests
                    || (!members.is_empty() && total_n + front.req.n > cfg.sim.max_batch_n)
                {
                    break;
                }
                total_n += front.req.n;
                members.push(q.pop_front().expect("front exists"));
            }
            if q.is_empty() {
                lane.queues.remove(&model);
            }
            lane.metrics.shed_expired += shed_plain;
        }
        // A shed hedged copy resolves its id; the ledger (submitted)
        // follows it to the shedding shard if it was counted elsewhere.
        for id in shed_hedged {
            let o = origin[&id];
            if o != s {
                shards[o].metrics.submitted -= 1;
                shards[s].metrics.submitted += 1;
            }
            shards[s].metrics.shed_expired += 1;
        }
        if members.is_empty() {
            now = dispatch_at;
            continue;
        }

        // Kernel cost through the memo. A registry error (unknown
        // model) fails the batch and strikes this shard's breaker —
        // the failure stays inside the shard.
        let batch_cycles = cost
            .entry((model.clone(), total_n))
            .or_insert_with(|| {
                let (planned, fetch) = registry.fetch(&model).ok()?;
                debug_assert!(
                    !fetch.is_cold(),
                    "simulate_sharded requires a warmed registry (cold fetch of {model})"
                );
                let _ = &fetch;
                Some(planned.simulate(total_n, &cfg.sim.spec).duration_cycles)
            })
            .to_owned();
        let Some(mut batch_cycles) = batch_cycles else {
            // The batch failed before touching the device: resolved
            // copies cancel silently, live ones fail (once per id).
            for qd in &members {
                let id = qd.req.id;
                if origin.contains_key(&id) {
                    if resolved.contains(&id) {
                        hedge_cancels += 1;
                        continue;
                    }
                    resolved.insert(id);
                    let o = origin[&id];
                    if o != s {
                        shards[o].metrics.submitted -= 1;
                        shards[s].metrics.submitted += 1;
                    }
                }
                shards[s].metrics.failed += 1;
            }
            shards[s]
                .breakers
                .entry(model.clone())
                .or_insert_with(|| CircuitBreaker::new(cfg.sim.breaker))
                .on_failure(dispatch_at);
            let before = health[s].ejections();
            if health[s].on_failure(dispatch_at) {
                if health[s].ejections() > before {
                    health_ejections += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("health.ejections").inc();
                    }
                } else if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("health.readmissions").inc();
                }
            }
            now = dispatch_at;
            makespan = makespan.max(dispatch_at);
            continue;
        };
        // Straggler injection: a configured per-shard cost multiplier,
        // plus any `shard.slow` fault (deterministic — the sim is
        // single-threaded, so the point's hit counter replays; the
        // fault's nanoseconds are read as cycles on the virtual clock).
        if let Some(factor) = cfg.stragglers.get(&s) {
            batch_cycles *= factor;
        }
        if fault::armed() {
            if let Some(fired) = fault::fire(fault::points::SHARD_SLOW) {
                if let fault::FaultKind::Latency { ns } = fired.kind {
                    batch_cycles += ns as f64;
                }
            }
        }
        let finish = dispatch_at + batch_cycles;
        makespan = makespan.max(finish);
        {
            let lane = &mut shards[s];
            lane.free_at = finish;
            lane.busy_cycles += batch_cycles;
            lane.metrics.batches += 1;
            lane.metrics.batch_requests_total += members.len() as u64;
            lane.metrics.batch_n_total += total_n as u64;
            lane.metrics.device_cycles += batch_cycles;
        }
        for qd in &members {
            let id = qd.req.id;
            if origin.contains_key(&id) {
                if resolved.contains(&id) {
                    // Both copies ran: this one's cycles are the waste
                    // the retry budget bounded.
                    hedge_wasted += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("hedge.wasted").inc();
                    }
                    continue;
                }
                resolved.insert(id);
                if qd.dup {
                    hedge_wins += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("hedge.wins").inc();
                    }
                }
                let o = origin[&id];
                if o != s {
                    shards[o].metrics.submitted -= 1;
                    shards[s].metrics.submitted += 1;
                }
            }
            let l = finish - qd.req.arrival_cycle;
            shards[s].metrics.completed += 1;
            shards[s].metrics.latency_cycles.record(l);
            latency.record(l);
            hedge.record(l);
            let before = health[s].ejections();
            if health[s].on_success(finish, l) {
                if health[s].ejections() > before {
                    health_ejections += 1;
                    if jigsaw_obs::enabled() {
                        jigsaw_obs::global().counter("health.ejections").inc();
                    }
                } else if jigsaw_obs::enabled() {
                    jigsaw_obs::global().counter("health.readmissions").inc();
                }
            }
        }
        // Refresh the fleet baseline the scorers compare against: the
        // median of per-shard EWMA latencies, so one straggler can't
        // drag the baseline up and mask itself.
        if cfg.shard.health.enabled {
            let ewmas: Vec<f64> = health.iter().map(|h| h.ewma_latency()).collect();
            let baseline = fleet_baseline(&ewmas);
            for h in health.iter_mut() {
                h.observe_baseline(baseline);
            }
        }
        if let Some(br) = shards[s].breakers.get_mut(&model) {
            br.on_success();
        }
        now = dispatch_at;
    }

    // --- Fold lanes into the report. ---
    let mut totals = ServeMetrics::default();
    let lanes: Vec<ShardLane> = shards
        .into_iter()
        .enumerate()
        .map(|(shard, mut lane)| {
            lane.metrics.breakers_open = lane
                .breakers
                .values_mut()
                .map(|b| b.state(makespan))
                .filter(|st| *st != BreakerState::Closed)
                .count() as u64;
            totals.submitted += lane.metrics.submitted;
            totals.completed += lane.metrics.completed;
            totals.rejected += lane.metrics.rejected;
            totals.breaker_rejects += lane.metrics.breaker_rejects;
            totals.failed += lane.metrics.failed;
            totals.shed_expired += lane.metrics.shed_expired;
            totals.breakers_open += lane.metrics.breakers_open;
            totals.batches += lane.metrics.batches;
            totals.batch_requests_total += lane.metrics.batch_requests_total;
            totals.batch_n_total += lane.metrics.batch_n_total;
            totals.peak_queue_depth = totals.peak_queue_depth.max(lane.metrics.peak_queue_depth);
            totals.device_cycles += lane.metrics.device_cycles;
            ShardLane {
                shard,
                busy_cycles: lane.busy_cycles,
                forwarded_out: lane.forwarded_out,
                stolen_from: lane.stolen_from,
                metrics: lane.metrics,
            }
        })
        .collect();
    let (promotions, demotions) = hot.stats();
    ShardSimReport {
        lanes,
        latency_cycles: latency,
        totals,
        forwarded,
        stolen,
        promotions,
        demotions,
        hedges,
        hedge_wins,
        hedge_cancels,
        hedge_wasted,
        health_ejections,
        makespan_cycles: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loadgen::{generate_zipf_schedule, ZipfLoadSpec};
    use crate::registry::{ModelRegistry, RegistryConfig};
    use crate::shard::replicate::ReplicationConfig;
    use crate::shard::steal::StealConfig;
    use crate::sim::simulate_schedule;
    use crate::zoo::scaled_zoo;
    use gpu_sim::GpuSpec;

    fn warm_registry(models: usize) -> (ModelRegistry, Vec<crate::zoo::ZooModel>) {
        let zoo = scaled_zoo(models, 33);
        let reg = ModelRegistry::new(RegistryConfig {
            budget_bytes: 1 << 30,
            ..RegistryConfig::default()
        })
        .unwrap();
        for m in &zoo {
            reg.register(&m.name, m.weights(), m.config);
        }
        reg.warm_all().unwrap();
        (reg, zoo)
    }

    fn sharded_cfg(shards: usize) -> ShardSimConfig {
        ShardSimConfig::new(
            ShardConfig::new(shards)
                .with_replication(ReplicationConfig::cycles(32, 2, 500_000.0))
                .with_steal(StealConfig::threshold(8)),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        )
    }

    fn zipf(requests: usize, seed: u64, zoo: &[crate::zoo::ZooModel]) -> Vec<SimRequest> {
        generate_zipf_schedule(
            zoo,
            &ZipfLoadSpec {
                requests,
                seed,
                mean_gap_cycles: 300.0,
                ..ZipfLoadSpec::default()
            },
        )
        .into_iter()
        .map(|z| z.req)
        .collect()
    }

    #[test]
    fn sharded_sim_conserves_and_spreads_load() {
        let (reg, zoo) = warm_registry(8);
        let schedule = zipf(1500, 11, &zoo);
        let report = simulate_sharded(&reg, &schedule, &sharded_cfg(4));
        assert_eq!(
            report.totals.completed + report.totals.failed + report.totals.shed_expired,
            report.totals.submitted,
            "conservation across shards"
        );
        assert_eq!(
            report.totals.submitted + report.totals.rejected,
            schedule.len() as u64,
            "every request admitted or rejected"
        );
        assert!(
            report
                .lanes
                .iter()
                .filter(|l| l.metrics.submitted > 0)
                .count()
                >= 2,
            "traffic spread over shards"
        );
        assert!(report.promotions > 0, "zipf head went hot");
    }

    #[test]
    fn sharded_sim_is_bit_deterministic() {
        let (reg, zoo) = warm_registry(8);
        let schedule = zipf(1000, 17, &zoo);
        let cfg = sharded_cfg(4);
        let a = simulate_sharded(&reg, &schedule, &cfg);
        let b = simulate_sharded(&reg, &schedule, &cfg);
        assert_eq!(a.makespan_cycles.to_bits(), b.makespan_cycles.to_bits());
        assert_eq!(
            a.latency_cycles.percentile(99.0).to_bits(),
            b.latency_cycles.percentile(99.0).to_bits()
        );
        assert_eq!(a.forwarded, b.forwarded);
        assert_eq!(a.stolen, b.stolen);
        assert_eq!(a.promotions, b.promotions);
        for (la, lb) in a.lanes.iter().zip(&b.lanes) {
            assert_eq!(la.metrics.submitted, lb.metrics.submitted);
            assert_eq!(la.metrics.completed, lb.metrics.completed);
            assert_eq!(la.busy_cycles.to_bits(), lb.busy_cycles.to_bits());
        }
    }

    #[test]
    fn one_shard_matches_single_shard_simulator_totals() {
        let (reg, zoo) = warm_registry(4);
        let schedule = zipf(400, 23, &zoo);
        let cfg = ShardSimConfig::new(
            ShardConfig::new(1),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        );
        let sharded = simulate_sharded(&reg, &schedule, &cfg);
        let single = simulate_schedule(&reg, &schedule, &cfg.sim);
        assert_eq!(sharded.totals.completed, single.metrics.completed);
        assert_eq!(sharded.totals.batches, single.metrics.batches);
        assert_eq!(
            sharded.makespan_cycles.to_bits(),
            single.makespan_cycles.to_bits(),
            "one shard degenerates to the single-shard simulator"
        );
    }

    #[test]
    fn more_shards_cut_tail_latency_under_saturating_load() {
        let (reg, zoo) = warm_registry(8);
        let schedule = zipf(1200, 29, &zoo);
        let one = simulate_sharded(&reg, &schedule, &sharded_cfg(1));
        let four = simulate_sharded(&reg, &schedule, &sharded_cfg(4));
        assert!(
            four.latency_cycles.percentile(99.0) < one.latency_cycles.percentile(99.0),
            "4-shard p99 {} vs 1-shard p99 {}",
            four.latency_cycles.percentile(99.0),
            one.latency_cycles.percentile(99.0)
        );
        assert!(four.makespan_cycles < one.makespan_cycles);
    }

    #[test]
    fn forwarding_and_stealing_fire_under_skew() {
        let (reg, zoo) = warm_registry(8);
        // Heavy skew + tight arrivals: the hot model's home shard
        // saturates, so replicas absorb forwarded/stolen work.
        let schedule: Vec<SimRequest> = generate_zipf_schedule(
            &zoo,
            &ZipfLoadSpec {
                requests: 1500,
                seed: 31,
                exponent: 1.6,
                mean_gap_cycles: 120.0,
                ..ZipfLoadSpec::default()
            },
        )
        .into_iter()
        .map(|z| z.req)
        .collect();
        let report = simulate_sharded(&reg, &schedule, &sharded_cfg(4));
        assert!(report.promotions > 0, "hot model promoted");
        assert!(
            report.forwarded > 0 || report.stolen > 0,
            "load moved off the hot shard (forwarded {} stolen {})",
            report.forwarded,
            report.stolen
        );
        assert_eq!(
            report.totals.completed + report.totals.failed + report.totals.shed_expired,
            report.totals.submitted
        );
    }

    #[test]
    fn hedging_and_health_bound_p99_under_a_straggler() {
        // The §17 acceptance scenario: identical offered load, one
        // shard degraded to a 10× straggler. With health ejection +
        // hedging on, the fleet's p99 must stay within half of the
        // unprotected run's, and the protection must not blow the
        // retry budget's work-amplification bound.
        let (reg, zoo) = warm_registry(8);
        let schedule = zipf(1200, 47, &zoo);
        let cfg = |tail: bool| {
            let mut shard = ShardConfig::new(4)
                .with_replication(ReplicationConfig::cycles(32, 2, 500_000.0))
                .with_steal(StealConfig::threshold(8));
            if tail {
                shard = shard
                    .with_health(crate::shard::HealthConfig::cycles())
                    .with_hedge(crate::shard::HedgeConfig::cycles());
            }
            ShardSimConfig::new(shard, SimConfig::batched(GpuSpec::a100(), 128, 20_000.0))
                .with_straggler(0, 10.0)
        };
        let unprotected = simulate_sharded(&reg, &schedule, &cfg(false));
        let protected = simulate_sharded(&reg, &schedule, &cfg(true));
        let conserves = |r: &ShardSimReport| {
            r.totals.completed + r.totals.failed + r.totals.shed_expired == r.totals.submitted
        };
        assert!(conserves(&unprotected) && conserves(&protected));
        assert!(
            protected.hedges > 0 || protected.health_ejections > 0,
            "tail tolerance engaged (hedges {} ejections {})",
            protected.hedges,
            protected.health_ejections
        );
        let (up99, pp99) = (
            unprotected.latency_cycles.percentile(99.0),
            protected.latency_cycles.percentile(99.0),
        );
        assert!(
            pp99 <= 0.5 * up99,
            "hedged p99 {pp99} vs unhedged p99 {up99}: not within 0.5×"
        );
        // Executed work: hedging may only add the budget fraction (10%)
        // on top of the unprotected run — and steering work off the 10×
        // shard usually lands it well below even that.
        let work = |r: &ShardSimReport| r.lanes.iter().map(|l| l.busy_cycles).sum::<f64>();
        assert!(
            work(&protected) <= 1.1 * work(&unprotected),
            "work amplification {} vs budget bound 1.1",
            work(&protected) / work(&unprotected)
        );
    }

    #[test]
    fn tail_tolerant_run_is_bit_deterministic() {
        let (reg, zoo) = warm_registry(8);
        let schedule = zipf(800, 53, &zoo);
        let cfg = ShardSimConfig::new(
            ShardConfig::new(4)
                .with_replication(ReplicationConfig::cycles(32, 2, 500_000.0))
                .with_steal(StealConfig::threshold(8))
                .with_health(crate::shard::HealthConfig::cycles())
                .with_hedge(crate::shard::HedgeConfig::cycles()),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        )
        .with_straggler(1, 10.0);
        let a = simulate_sharded(&reg, &schedule, &cfg);
        let b = simulate_sharded(&reg, &schedule, &cfg);
        assert_eq!(a.makespan_cycles.to_bits(), b.makespan_cycles.to_bits());
        assert_eq!(
            a.latency_cycles.percentile(99.0).to_bits(),
            b.latency_cycles.percentile(99.0).to_bits()
        );
        assert_eq!(a.hedges, b.hedges);
        assert_eq!(a.hedge_wins, b.hedge_wins);
        assert_eq!(a.hedge_cancels, b.hedge_cancels);
        assert_eq!(a.health_ejections, b.health_ejections);
    }

    #[test]
    fn hedged_duplicates_carry_the_original_deadline() {
        // Deadline propagation (§17): the hedged duplicate inherits the
        // original submitter's deadline, never a fresh window. (A
        // forwarded or stolen request moves the queued entry itself —
        // same `req`, original arrival, original deadline — so the only
        // place a fresh window could sneak in is the duplicate, which
        // is created later.) Construction: shard 0's device is pinned
        // by a huge straggler batch, a deadlined probe queues behind
        // it, and the hedge-delay floor exceeds the probe's deadline —
        // so the duplicate is born on the healthy shard already past
        // the ORIGINAL deadline. Propagation ⇒ the duplicate sheds and
        // the request never completes; a fresh window would have served
        // it.
        let (reg, zoo) = warm_registry(8);
        let ring = HashRing::new(2, 64);
        let mut on0 = zoo.iter().filter(|m| ring.shard_for(&m.name) == 0);
        let blocker = on0.next().expect("a model homed on shard 0").name.clone();
        let probed = on0
            .next()
            .expect("two models homed on shard 0")
            .name
            .clone();
        let warm = zoo
            .iter()
            .find(|m| ring.shard_for(&m.name) == 1)
            .expect("a model homed on shard 1")
            .name
            .clone();

        let mut schedule: Vec<SimRequest> = Vec::new();
        // Pins shard 0's device for ~10_000× one batch's cycles.
        schedule.push(SimRequest {
            id: 1,
            model: blocker,
            arrival_cycle: 0.0,
            n: 8,
            deadline_cycles: None,
        });
        // Warm traffic on shard 1 arms the hedge latency window. 24
        // fast samples alongside the blocker's one enormous latency
        // keep the nearest-rank p95 at a fast sample, so the delay
        // stays at the 60k floor rather than the blocker's millions.
        for i in 0..24 {
            schedule.push(SimRequest {
                id: 10 + i,
                model: warm.clone(),
                arrival_cycle: 50.0 * i as f64,
                n: 8,
                deadline_cycles: None,
            });
        }
        // The probe: its 40k-cycle deadline expires before the 60k
        // hedge-delay floor can fire.
        schedule.push(SimRequest {
            id: 99,
            model: probed,
            arrival_cycle: 400_000.0,
            n: 8,
            deadline_cycles: Some(40_000.0),
        });

        let hedge = crate::shard::HedgeConfig {
            enabled: true,
            percentile: 0.95,
            min_delay: 60_000.0,
            budget_fraction: 1.0,
            burst: 8.0,
            min_samples: 4,
        };
        let cfg = ShardSimConfig::new(
            ShardConfig::new(2).with_hedge(hedge),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        )
        .with_straggler(0, 10_000.0);
        let report = simulate_sharded(&reg, &schedule, &cfg);
        assert_eq!(
            report.totals.completed + report.totals.failed + report.totals.shed_expired,
            report.totals.submitted
        );
        assert_eq!(report.hedges, 1, "the stuck probe hedged exactly once");
        assert_eq!(
            report.totals.shed_expired, 1,
            "the duplicate shed against the original deadline"
        );
        assert_eq!(
            report.totals.completed,
            schedule.len() as u64 - 1,
            "everything but the expired probe served"
        );
        assert!(
            report.hedge_cancels >= 1,
            "the stuck primary cancelled unexecuted once the id resolved"
        );
    }

    #[test]
    fn unknown_model_fails_inside_its_shard_only() {
        let (reg, zoo) = warm_registry(4);
        let mut schedule = zipf(200, 41, &zoo);
        // Interleave traffic for a model no registry knows.
        for i in 0..40 {
            schedule.push(SimRequest {
                id: 10_000 + i,
                model: "ghost-model".to_string(),
                arrival_cycle: (i as f64) * 400.0,
                n: 8,
                deadline_cycles: None,
            });
        }
        // No replication: a failing model must stay pinned to its home
        // shard for the isolation assertion to be meaningful.
        let cfg = ShardSimConfig::new(
            ShardConfig::new(2),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        );
        let report = simulate_sharded(&reg, &schedule, &cfg);
        assert!(report.totals.failed > 0, "ghost batches failed typed");
        assert!(report.totals.completed > 0, "real traffic kept serving");
        let ghost_shard = HashRing::new(2, 64).shard_for("ghost-model");
        assert!(
            report.lanes[ghost_shard].metrics.failed > 0,
            "failures stayed on the ghost's home shard"
        );
        assert_eq!(
            report.lanes[1 - ghost_shard].metrics.failed,
            0,
            "other shard saw no failures"
        );
    }
}
