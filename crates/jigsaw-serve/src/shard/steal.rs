//! Work-steal / forward policy: when a shard's queue backs up past a
//! threshold, traffic moves to the least-loaded replica shard.
//!
//! Two mechanisms share this policy:
//! * **forwarding** (sender-initiated, router + sim): a new request
//!   whose home shard is over the queue threshold is admitted on the
//!   least-loaded live replica instead;
//! * **stealing** (receiver-initiated, sim only): an idle shard whose
//!   device is free pulls queued work for a model it replicates from
//!   the deepest over-threshold peer.

/// Steal/forward policy knobs.
#[derive(Clone, Copy, Debug)]
pub struct StealConfig {
    /// Master switch; when off, requests always land on the home shard
    /// (or its failover replica if the home shard is down).
    pub enabled: bool,
    /// Queue depth at which a shard starts shedding new arrivals to
    /// replicas, and above which peers may steal from it.
    pub queue_threshold: usize,
}

impl StealConfig {
    /// Forwarding/stealing on, with the given queue-depth trigger.
    pub fn threshold(queue_threshold: usize) -> StealConfig {
        StealConfig {
            enabled: true,
            queue_threshold: queue_threshold.max(1),
        }
    }

    /// Policy switched off.
    pub fn disabled() -> StealConfig {
        StealConfig {
            enabled: false,
            queue_threshold: usize::MAX,
        }
    }
}

impl Default for StealConfig {
    fn default() -> StealConfig {
        StealConfig::threshold(32)
    }
}

/// Picks the least-loaded shard out of `candidates` given per-shard
/// queue depths; ties break toward the lowest shard id so the choice
/// is deterministic. Returns `None` when `candidates` is empty.
pub fn least_loaded(candidates: &[usize], depth_of: impl Fn(usize) -> usize) -> Option<usize> {
    candidates.iter().copied().min_by_key(|&s| (depth_of(s), s))
}

/// Whether a request homed on a shard with `home_depth` queued entries
/// should be forwarded under `config`. The forward target must still
/// be strictly less loaded to be worth it — `least_loaded` plus this
/// check together prevent ping-ponging between two saturated shards.
pub fn should_forward(config: &StealConfig, home_depth: usize, target_depth: usize) -> bool {
    config.enabled && home_depth >= config.queue_threshold && target_depth < home_depth
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_loaded_breaks_ties_low() {
        let depths = [5usize, 2, 2, 7];
        assert_eq!(least_loaded(&[0, 1, 2, 3], |s| depths[s]), Some(1));
        assert_eq!(least_loaded(&[3, 2], |s| depths[s]), Some(2));
        assert_eq!(least_loaded(&[], |_| 0), None);
    }

    #[test]
    fn forward_requires_threshold_and_strict_improvement() {
        let c = StealConfig::threshold(4);
        assert!(!should_forward(&c, 3, 0), "below threshold stays home");
        assert!(should_forward(&c, 4, 0));
        assert!(should_forward(&c, 10, 9));
        assert!(!should_forward(&c, 10, 10), "equal load: no ping-pong");
        assert!(!should_forward(&StealConfig::disabled(), 100, 0));
    }
}
