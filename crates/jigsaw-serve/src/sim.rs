//! Deterministic discrete-event serving simulation: the same
//! admission/batching policy as the threaded [`crate::server`], but on
//! a virtual cycle clock with a single simulated device. Two runs over
//! the same schedule produce identical reports — this is what the
//! `serving` experiment sweeps, so its batched-vs-unbatched and
//! warm-vs-cold comparisons are reproducible.
//!
//! Cold fetches (planning or artifact loads) charge their measured
//! host time to the virtual timeline, converted at the device clock —
//! the end-to-end cost a cold-start request actually pays.

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use gpu_sim::GpuSpec;

use crate::breaker::{BreakerAdmit, BreakerConfig, BreakerState, CircuitBreaker};
use crate::metrics::ServeMetrics;
use crate::registry::ModelRegistry;
use crate::server::ServeError;

/// Virtual-clock serving policy knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulated device.
    pub spec: GpuSpec,
    /// Maximum total B columns per batch.
    pub max_batch_n: usize,
    /// Maximum requests per batch (`1` disables batching).
    pub max_batch_requests: usize,
    /// Cycles a batch head may wait for co-riders.
    pub max_wait_cycles: f64,
    /// Charge cold-fetch host time (ns → cycles at the device clock)
    /// to the virtual timeline.
    pub charge_cold_fetch: bool,
    /// Per-model circuit breaker, on the cycle clock.
    pub breaker: BreakerConfig,
}

impl SimConfig {
    /// The batched policy at a given window.
    pub fn batched(spec: GpuSpec, max_batch_n: usize, max_wait_cycles: f64) -> SimConfig {
        SimConfig {
            spec,
            max_batch_n,
            max_batch_requests: usize::MAX,
            max_wait_cycles,
            charge_cold_fetch: true,
            breaker: BreakerConfig::cycles(),
        }
    }

    /// One request per kernel, no batching window.
    pub fn unbatched(spec: GpuSpec) -> SimConfig {
        SimConfig {
            spec,
            max_batch_n: usize::MAX,
            max_batch_requests: 1,
            max_wait_cycles: 0.0,
            charge_cold_fetch: true,
            breaker: BreakerConfig::cycles(),
        }
    }
}

/// One request in a virtual-clock schedule.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// Stable id (ties broken by it; keep unique).
    pub id: usize,
    /// Target model.
    pub model: String,
    /// Arrival time, cycles.
    pub arrival_cycle: f64,
    /// Requested output width (B columns).
    pub n: usize,
    /// Cycles after arrival by which the request must *dispatch*; a
    /// still-queued request past this budget is shed with
    /// [`ServeError::DeadlineExceeded`] instead of executed. `None`
    /// waits forever.
    pub deadline_cycles: Option<f64>,
}

/// Completion record for one simulated request.
#[derive(Clone, Debug)]
pub struct SimCompletion {
    /// Request id.
    pub id: usize,
    /// Target model.
    pub model: String,
    /// Arrival time, cycles.
    pub arrival_cycle: f64,
    /// Batch dispatch time, cycles.
    pub dispatch_cycle: f64,
    /// Completion time, cycles.
    pub finish_cycle: f64,
    /// Requests in this request's batch.
    pub batch_requests: usize,
    /// Total columns of the batch.
    pub batch_n: usize,
    /// Proportional share of the batch's cycles charged here.
    pub charged_cycles: f64,
    /// Whether the batch paid a cold fetch.
    pub cold: bool,
}

/// Terminal non-success record for one *admitted* simulated request:
/// shed on deadline expiry, failed by a registry error, or failed by a
/// panic caught at dispatch.
#[derive(Clone, Debug)]
pub struct SimFailure {
    /// Request id.
    pub id: usize,
    /// Target model.
    pub model: String,
    /// Arrival time, cycles.
    pub arrival_cycle: f64,
    /// Cycle at which the request reached its terminal state.
    pub cycle: f64,
    /// Why it did not complete.
    pub error: ServeError,
}

/// Result of a virtual-clock run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-request completions, in completion order.
    pub completions: Vec<SimCompletion>,
    /// Admitted requests that did not complete (shed or failed), in
    /// terminal order. Every admitted request appears in exactly one of
    /// `completions` / `failures` — `metrics.conserves()` checks this.
    pub failures: Vec<SimFailure>,
    /// Ids rejected at admission by an open circuit breaker (never
    /// admitted, so outside the conservation sum).
    pub rejected_ids: Vec<usize>,
    /// Aggregated metrics (`latency_host_ns` stays empty — there is no
    /// host time on a virtual clock).
    pub metrics: ServeMetrics,
    /// Cycles the device spent busy (kernels + charged cold fetches).
    pub busy_cycles: f64,
    /// Finish time of the last batch, cycles.
    pub makespan_cycles: f64,
}

impl SimReport {
    /// Completed requests per 10⁹ cycles of *elapsed* virtual time —
    /// the experiment's headline throughput (uses the makespan, so idle
    /// gaps and cold stalls count against it).
    pub fn requests_per_gcycle(&self) -> f64 {
        if self.makespan_cycles <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / (self.makespan_cycles / 1e9)
        }
    }
}

struct Queued<'a> {
    req: &'a SimRequest,
}

/// Runs the schedule to completion on the virtual clock.
///
/// Deterministic: queues iterate in model-name order, ties in arrival
/// order break by request id, and the only clock is the cycle counter.
/// (Cold-fetch charges use measured host time, so *magnitudes* vary
/// run to run when `charge_cold_fetch` is set and the registry is
/// cold; the schedule itself does not.)
///
/// Infallible by construction: registry errors and panics raised at
/// dispatch (e.g. injected via [`jigsaw_core::fault`]) fail that
/// batch's members with a typed [`SimFailure`] instead of aborting the
/// run, expired queue entries are shed, and an open per-model circuit
/// breaker fast-rejects at admission — so every request in the
/// schedule reaches exactly one terminal state.
///
/// Assembly-mode neutral: the registry's per-model `ExecOptions`
/// (including the fused-assembly opt-in) ride along untouched, but the
/// virtual clock charges only simulated device cycles — host-side
/// assembly cost is a real-`Server` (and `exp serving`) concern, so a
/// schedule simulates identically under either assembly mode.
pub fn simulate_schedule(
    registry: &ModelRegistry,
    schedule: &[SimRequest],
    cfg: &SimConfig,
) -> SimReport {
    assert!(cfg.max_batch_n >= 1 && cfg.max_batch_requests >= 1);
    let mut order: Vec<&SimRequest> = schedule.iter().collect();
    order.sort_by(|a, b| {
        a.arrival_cycle
            .partial_cmp(&b.arrival_cycle)
            .expect("finite arrivals")
            .then(a.id.cmp(&b.id))
    });

    let mut queues: BTreeMap<String, VecDeque<Queued<'_>>> = BTreeMap::new();
    let mut breakers: BTreeMap<String, CircuitBreaker> = BTreeMap::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    let mut free_at = 0.0f64;
    let mut busy_cycles = 0.0f64;
    let mut makespan = 0.0f64;
    let mut metrics = ServeMetrics::default();
    let mut completions = Vec::with_capacity(order.len());
    let mut failures: Vec<SimFailure> = Vec::new();
    let mut rejected_ids: Vec<usize> = Vec::new();

    loop {
        // Admit everything that has arrived by `now`. A model whose
        // breaker is open fast-rejects instead of queuing behind a
        // failing backend.
        while next_arrival < order.len() && order[next_arrival].arrival_cycle <= now {
            let req = order[next_arrival];
            next_arrival += 1;
            if let Some(br) = breakers.get_mut(&req.model) {
                if let BreakerAdmit::Reject { .. } = br.admit(now) {
                    metrics.rejected += 1;
                    metrics.breaker_rejects += 1;
                    rejected_ids.push(req.id);
                    continue;
                }
            }
            queues
                .entry(req.model.clone())
                .or_default()
                .push_back(Queued { req });
            metrics.submitted += 1;
        }
        let depth: usize = queues.values().map(|q| q.len()).sum();
        metrics.peak_queue_depth = metrics.peak_queue_depth.max(depth);

        // Nothing queued: jump to the next arrival, or finish.
        if depth == 0 {
            match order.get(next_arrival) {
                Some(req) => {
                    now = now.max(req.arrival_cycle);
                    continue;
                }
                None => break,
            }
        }

        // Oldest head goes first (model name breaks exact ties).
        let model = queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by(|(na, qa), (nb, qb)| {
                let (a, b) = (
                    qa.front().expect("non-empty"),
                    qb.front().expect("non-empty"),
                );
                a.req
                    .arrival_cycle
                    .partial_cmp(&b.req.arrival_cycle)
                    .expect("finite arrivals")
                    .then(a.req.id.cmp(&b.req.id))
                    .then(na.cmp(nb))
            })
            .map(|(name, _)| name.clone())
            .expect("depth > 0");
        let q = queues.get_mut(&model).expect("chosen above");

        // Is the batch already full from what is queued?
        let mut queued_n = 0usize;
        let mut queued_reqs = 0usize;
        for p in q.iter() {
            if queued_reqs + 1 > cfg.max_batch_requests
                || (queued_reqs > 0 && queued_n + p.req.n > cfg.max_batch_n)
            {
                break;
            }
            queued_reqs += 1;
            queued_n += p.req.n;
        }
        let full = queued_reqs >= cfg.max_batch_requests
            || queued_n >= cfg.max_batch_n
            || queued_reqs == q.len() && next_arrival >= order.len();
        let head = q.front().expect("non-empty").req;
        // The batching window never outlives the head's deadline: close
        // it early so a deadline-carrying head dispatches just in time
        // rather than being shed while waiting for co-riders.
        let head_deadline = head
            .deadline_cycles
            .map_or(f64::INFINITY, |d| head.arrival_cycle + d);
        let window_closes = (head.arrival_cycle + cfg.max_wait_cycles).min(head_deadline);
        let dispatch_at = if full {
            now.max(free_at)
        } else {
            now.max(free_at).max(window_closes)
        };

        // A future arrival before the dispatch instant may join (or
        // overfill) the batch — advance the clock and re-decide.
        if let Some(next) = order.get(next_arrival) {
            if next.arrival_cycle <= dispatch_at {
                now = next.arrival_cycle;
                continue;
            }
        }

        // Dispatch: shed expired entries, then pop whole requests
        // while they fit. Expiry is strict (`dispatch_at > deadline`):
        // a head whose window was clamped to its deadline dispatches
        // exactly at the edge and is served.
        let mut members = Vec::new();
        let mut total_n = 0usize;
        while let Some(front) = q.front() {
            let expired = front
                .req
                .deadline_cycles
                .is_some_and(|d| dispatch_at > front.req.arrival_cycle + d);
            if expired {
                let req = q.pop_front().expect("front exists").req;
                metrics.shed_expired += 1;
                failures.push(SimFailure {
                    id: req.id,
                    model: model.clone(),
                    arrival_cycle: req.arrival_cycle,
                    cycle: dispatch_at,
                    error: ServeError::DeadlineExceeded,
                });
                continue;
            }
            if members.len() + 1 > cfg.max_batch_requests
                || (!members.is_empty() && total_n + front.req.n > cfg.max_batch_n)
            {
                break;
            }
            total_n += front.req.n;
            members.push(q.pop_front().expect("front exists").req);
        }
        if q.is_empty() {
            queues.remove(&model);
        }
        if members.is_empty() {
            // Everything at the head had expired; re-decide at the
            // shedding instant.
            now = dispatch_at;
            continue;
        }

        // A fetch failure (or a panic escaping it — injected faults
        // included) fails the whole batch with a typed terminal state,
        // trips the model's breaker once, and keeps the run alive.
        let fetched = catch_unwind(AssertUnwindSafe(|| registry.fetch(&model)));
        let (planned, fetch) = match fetched {
            Ok(Ok(pair)) => pair,
            other => {
                let error = match other {
                    Ok(Err(e)) => ServeError::Registry(e.to_string()),
                    _ => ServeError::WorkerPanic,
                };
                if matches!(error, ServeError::WorkerPanic) {
                    metrics.worker_panics += 1;
                }
                for req in members {
                    metrics.failed += 1;
                    failures.push(SimFailure {
                        id: req.id,
                        model: model.clone(),
                        arrival_cycle: req.arrival_cycle,
                        cycle: dispatch_at,
                        error: error.clone(),
                    });
                }
                breakers
                    .entry(model.clone())
                    .or_insert_with(|| CircuitBreaker::new(cfg.breaker))
                    .on_failure(dispatch_at);
                now = dispatch_at;
                makespan = makespan.max(dispatch_at);
                continue;
            }
        };
        let cold_cycles = if cfg.charge_cold_fetch && fetch.is_cold() {
            planned.plan_host_ns as f64 * cfg.spec.clock_ghz
        } else {
            0.0
        };
        let kernel_cycles = planned.simulate(total_n, &cfg.spec).duration_cycles;
        let batch_cycles = cold_cycles + kernel_cycles;
        let finish = dispatch_at + batch_cycles;
        free_at = finish;
        now = dispatch_at;
        busy_cycles += batch_cycles;
        makespan = makespan.max(finish);

        metrics.batches += 1;
        metrics.batch_requests_total += members.len() as u64;
        metrics.batch_n_total += total_n as u64;
        metrics.device_cycles += batch_cycles;
        for req in members.iter() {
            let share = batch_cycles * req.n as f64 / total_n as f64;
            metrics.completed += 1;
            metrics.latency_cycles.record(finish - req.arrival_cycle);
            completions.push(SimCompletion {
                id: req.id,
                model: model.clone(),
                arrival_cycle: req.arrival_cycle,
                dispatch_cycle: dispatch_at,
                finish_cycle: finish,
                batch_requests: members.len(),
                batch_n: total_n,
                charged_cycles: share,
                cold: fetch.is_cold(),
            });
        }
        if let Some(br) = breakers.get_mut(&model) {
            br.on_success();
        }
    }

    metrics.breakers_open = breakers
        .values_mut()
        .map(|b| b.state(makespan))
        .filter(|s| *s != BreakerState::Closed)
        .count() as u64;
    SimReport {
        completions,
        failures,
        rejected_ids,
        metrics,
        busy_cycles,
        makespan_cycles: makespan,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, RegistryConfig};
    use crate::zoo::default_zoo;

    fn registry() -> ModelRegistry {
        let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
        for m in default_zoo(60).into_iter().take(2) {
            reg.register(&m.name, m.weights(), m.config);
        }
        reg
    }

    fn burst(model: &str, count: usize, n: usize, gap: f64) -> Vec<SimRequest> {
        (0..count)
            .map(|i| SimRequest {
                id: i,
                model: model.to_string(),
                arrival_cycle: i as f64 * gap,
                n,
                deadline_cycles: None,
            })
            .collect()
    }

    #[test]
    fn batched_coalesces_and_beats_unbatched() {
        let reg = registry();
        reg.warm_all().unwrap();
        let schedule = burst("attention-small", 16, 16, 100.0);
        let spec = GpuSpec::a100();
        let batched = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(spec.clone(), 256, 50_000.0),
        );
        let unbatched = simulate_schedule(&reg, &schedule, &SimConfig::unbatched(spec));
        assert_eq!(batched.completions.len(), 16);
        assert_eq!(unbatched.completions.len(), 16);
        assert!(unbatched.metrics.batches == 16, "one kernel per request");
        assert!(batched.metrics.batches < 16, "requests were coalesced");
        assert!(
            batched.makespan_cycles < unbatched.makespan_cycles,
            "batched {} vs unbatched {}",
            batched.makespan_cycles,
            unbatched.makespan_cycles
        );
        assert!(batched.requests_per_gcycle() > unbatched.requests_per_gcycle());
    }

    #[test]
    fn schedule_is_deterministic() {
        let reg = registry();
        reg.warm_all().unwrap();
        let mut schedule = burst("attention-small", 8, 8, 5_000.0);
        schedule.extend(
            burst("embedding-proj", 8, 8, 7_000.0)
                .into_iter()
                .map(|mut r| {
                    r.id += 100;
                    r
                }),
        );
        let cfg = SimConfig::batched(GpuSpec::a100(), 64, 20_000.0);
        let a = simulate_schedule(&reg, &schedule, &cfg);
        let b = simulate_schedule(&reg, &schedule, &cfg);
        let key = |r: &SimReport| -> Vec<(usize, u64, u64)> {
            r.completions
                .iter()
                .map(|c| (c.id, c.dispatch_cycle.to_bits(), c.finish_cycle.to_bits()))
                .collect()
        };
        assert_eq!(key(&a), key(&b), "bit-identical schedules");
        assert_eq!(a.makespan_cycles.to_bits(), b.makespan_cycles.to_bits());
    }

    #[test]
    fn cold_fetch_charges_the_timeline() {
        let schedule = burst("attention-small", 4, 8, 1_000.0);
        let cfg = SimConfig::batched(GpuSpec::a100(), 64, 10_000.0);

        let cold_reg = registry();
        let cold = simulate_schedule(&cold_reg, &schedule, &cfg);
        let warm_reg = registry();
        warm_reg.warm_all().unwrap();
        let warm = simulate_schedule(&warm_reg, &schedule, &cfg);
        assert!(cold.completions.iter().any(|c| c.cold));
        assert!(warm.completions.iter().all(|c| !c.cold));
        assert!(
            cold.makespan_cycles > warm.makespan_cycles,
            "cold start stalls the timeline"
        );
    }

    #[test]
    fn window_delays_dispatch_until_full_or_expired() {
        let reg = registry();
        reg.warm_all().unwrap();
        // Two requests 1000 cycles apart, window 5000: one batch.
        let schedule = burst("attention-small", 2, 8, 1_000.0);
        let joined = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 64, 5_000.0),
        );
        assert_eq!(joined.metrics.batches, 1);
        // Window 10 cycles: the second request misses the batch.
        let split = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 64, 10.0),
        );
        assert_eq!(split.metrics.batches, 2);
    }

    #[test]
    fn expired_requests_are_shed_and_conserved() {
        let reg = registry();
        reg.warm_all().unwrap();
        // Back-to-back arrivals: the first batch occupies the device
        // long enough that tight-deadline stragglers expire in queue.
        let mut schedule = burst("attention-small", 6, 32, 10.0);
        for r in schedule.iter_mut().skip(2) {
            r.deadline_cycles = Some(50.0);
        }
        let report = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 32, 0.0),
        );
        assert!(report.metrics.shed_expired > 0, "stragglers were shed");
        assert!(report
            .failures
            .iter()
            .all(|f| f.error == ServeError::DeadlineExceeded));
        assert!(
            report.metrics.conserves(),
            "admitted = done + failed + shed"
        );
        assert_eq!(
            report.completions.len() + report.failures.len(),
            schedule.len(),
            "every request reached a terminal state"
        );
    }

    #[test]
    fn unknown_model_fails_batch_and_opens_breaker() {
        let reg = registry();
        let schedule = burst("no-such-model", 12, 8, 10_000.0);
        let report = simulate_schedule(&reg, &schedule, &SimConfig::unbatched(GpuSpec::a100()));
        assert_eq!(report.completions.len(), 0);
        assert!(report.metrics.failed > 0, "typed failures, no abort");
        assert!(
            report.metrics.rejected > 0,
            "breaker opened and fast-rejected later arrivals"
        );
        assert!(report
            .failures
            .iter()
            .all(|f| matches!(f.error, ServeError::Registry(_))));
        assert!(report.metrics.conserves());
        assert_eq!(
            report.completions.len() + report.failures.len() + report.rejected_ids.len(),
            schedule.len()
        );
    }
}
