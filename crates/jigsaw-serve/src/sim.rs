//! Deterministic discrete-event serving simulation: the same
//! admission/batching policy as the threaded [`crate::server`], but on
//! a virtual cycle clock with a single simulated device. Two runs over
//! the same schedule produce identical reports — this is what the
//! `serving` experiment sweeps, so its batched-vs-unbatched and
//! warm-vs-cold comparisons are reproducible.
//!
//! Cold fetches (planning or artifact loads) charge their measured
//! host time to the virtual timeline, converted at the device clock —
//! the end-to-end cost a cold-start request actually pays.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use gpu_sim::GpuSpec;

use crate::metrics::ServeMetrics;
use crate::registry::{ModelRegistry, RegistryError};

/// Virtual-clock serving policy knobs.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// Simulated device.
    pub spec: GpuSpec,
    /// Maximum total B columns per batch.
    pub max_batch_n: usize,
    /// Maximum requests per batch (`1` disables batching).
    pub max_batch_requests: usize,
    /// Cycles a batch head may wait for co-riders.
    pub max_wait_cycles: f64,
    /// Charge cold-fetch host time (ns → cycles at the device clock)
    /// to the virtual timeline.
    pub charge_cold_fetch: bool,
}

impl SimConfig {
    /// The batched policy at a given window.
    pub fn batched(spec: GpuSpec, max_batch_n: usize, max_wait_cycles: f64) -> SimConfig {
        SimConfig {
            spec,
            max_batch_n,
            max_batch_requests: usize::MAX,
            max_wait_cycles,
            charge_cold_fetch: true,
        }
    }

    /// One request per kernel, no batching window.
    pub fn unbatched(spec: GpuSpec) -> SimConfig {
        SimConfig {
            spec,
            max_batch_n: usize::MAX,
            max_batch_requests: 1,
            max_wait_cycles: 0.0,
            charge_cold_fetch: true,
        }
    }
}

/// One request in a virtual-clock schedule.
#[derive(Clone, Debug)]
pub struct SimRequest {
    /// Stable id (ties broken by it; keep unique).
    pub id: usize,
    /// Target model.
    pub model: String,
    /// Arrival time, cycles.
    pub arrival_cycle: f64,
    /// Requested output width (B columns).
    pub n: usize,
}

/// Completion record for one simulated request.
#[derive(Clone, Debug)]
pub struct SimCompletion {
    /// Request id.
    pub id: usize,
    /// Target model.
    pub model: String,
    /// Arrival time, cycles.
    pub arrival_cycle: f64,
    /// Batch dispatch time, cycles.
    pub dispatch_cycle: f64,
    /// Completion time, cycles.
    pub finish_cycle: f64,
    /// Requests in this request's batch.
    pub batch_requests: usize,
    /// Total columns of the batch.
    pub batch_n: usize,
    /// Proportional share of the batch's cycles charged here.
    pub charged_cycles: f64,
    /// Whether the batch paid a cold fetch.
    pub cold: bool,
}

/// Result of a virtual-clock run.
#[derive(Clone, Debug)]
pub struct SimReport {
    /// Per-request completions, in completion order.
    pub completions: Vec<SimCompletion>,
    /// Aggregated metrics (`latency_host_ns` stays empty — there is no
    /// host time on a virtual clock).
    pub metrics: ServeMetrics,
    /// Cycles the device spent busy (kernels + charged cold fetches).
    pub busy_cycles: f64,
    /// Finish time of the last batch, cycles.
    pub makespan_cycles: f64,
}

impl SimReport {
    /// Completed requests per 10⁹ cycles of *elapsed* virtual time —
    /// the experiment's headline throughput (uses the makespan, so idle
    /// gaps and cold stalls count against it).
    pub fn requests_per_gcycle(&self) -> f64 {
        if self.makespan_cycles <= 0.0 {
            0.0
        } else {
            self.completions.len() as f64 / (self.makespan_cycles / 1e9)
        }
    }
}

struct Queued<'a> {
    req: &'a SimRequest,
}

/// Runs the schedule to completion on the virtual clock.
///
/// Deterministic: queues iterate in model-name order, ties in arrival
/// order break by request id, and the only clock is the cycle counter.
/// (Cold-fetch charges use measured host time, so *magnitudes* vary
/// run to run when `charge_cold_fetch` is set and the registry is
/// cold; the schedule itself does not.)
pub fn simulate_schedule(
    registry: &ModelRegistry,
    schedule: &[SimRequest],
    cfg: &SimConfig,
) -> Result<SimReport, RegistryError> {
    assert!(cfg.max_batch_n >= 1 && cfg.max_batch_requests >= 1);
    let mut order: Vec<&SimRequest> = schedule.iter().collect();
    order.sort_by(|a, b| {
        a.arrival_cycle
            .partial_cmp(&b.arrival_cycle)
            .expect("finite arrivals")
            .then(a.id.cmp(&b.id))
    });

    let mut queues: BTreeMap<String, VecDeque<Queued<'_>>> = BTreeMap::new();
    let mut next_arrival = 0usize;
    let mut now = 0.0f64;
    let mut free_at = 0.0f64;
    let mut busy_cycles = 0.0f64;
    let mut makespan = 0.0f64;
    let mut metrics = ServeMetrics::default();
    let mut completions = Vec::with_capacity(order.len());

    loop {
        // Admit everything that has arrived by `now`.
        while next_arrival < order.len() && order[next_arrival].arrival_cycle <= now {
            let req = order[next_arrival];
            queues
                .entry(req.model.clone())
                .or_default()
                .push_back(Queued { req });
            metrics.submitted += 1;
            next_arrival += 1;
        }
        let depth: usize = queues.values().map(|q| q.len()).sum();
        metrics.peak_queue_depth = metrics.peak_queue_depth.max(depth);

        // Nothing queued: jump to the next arrival, or finish.
        if depth == 0 {
            match order.get(next_arrival) {
                Some(req) => {
                    now = now.max(req.arrival_cycle);
                    continue;
                }
                None => break,
            }
        }

        // Oldest head goes first (model name breaks exact ties).
        let model = queues
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .min_by(|(na, qa), (nb, qb)| {
                let (a, b) = (
                    qa.front().expect("non-empty"),
                    qb.front().expect("non-empty"),
                );
                a.req
                    .arrival_cycle
                    .partial_cmp(&b.req.arrival_cycle)
                    .expect("finite arrivals")
                    .then(a.req.id.cmp(&b.req.id))
                    .then(na.cmp(nb))
            })
            .map(|(name, _)| name.clone())
            .expect("depth > 0");
        let q = queues.get_mut(&model).expect("chosen above");

        // Is the batch already full from what is queued?
        let mut queued_n = 0usize;
        let mut queued_reqs = 0usize;
        for p in q.iter() {
            if queued_reqs + 1 > cfg.max_batch_requests
                || (queued_reqs > 0 && queued_n + p.req.n > cfg.max_batch_n)
            {
                break;
            }
            queued_reqs += 1;
            queued_n += p.req.n;
        }
        let full = queued_reqs >= cfg.max_batch_requests
            || queued_n >= cfg.max_batch_n
            || queued_reqs == q.len() && next_arrival >= order.len();
        let head_arrival = q.front().expect("non-empty").req.arrival_cycle;
        let window_closes = head_arrival + cfg.max_wait_cycles;
        let dispatch_at = if full {
            now.max(free_at)
        } else {
            now.max(free_at).max(window_closes)
        };

        // A future arrival before the dispatch instant may join (or
        // overfill) the batch — advance the clock and re-decide.
        if let Some(next) = order.get(next_arrival) {
            if next.arrival_cycle <= dispatch_at {
                now = next.arrival_cycle;
                continue;
            }
        }

        // Dispatch: pop whole requests while they fit.
        let mut members = Vec::new();
        let mut total_n = 0usize;
        while let Some(front) = q.front() {
            if members.len() + 1 > cfg.max_batch_requests
                || (!members.is_empty() && total_n + front.req.n > cfg.max_batch_n)
            {
                break;
            }
            total_n += front.req.n;
            members.push(q.pop_front().expect("front exists").req);
        }
        if q.is_empty() {
            queues.remove(&model);
        }

        let (planned, fetch) = registry.fetch(&model)?;
        let cold_cycles = if cfg.charge_cold_fetch && fetch.is_cold() {
            planned.plan_host_ns as f64 * cfg.spec.clock_ghz
        } else {
            0.0
        };
        let kernel_cycles = planned.simulate(total_n, &cfg.spec).duration_cycles;
        let batch_cycles = cold_cycles + kernel_cycles;
        let finish = dispatch_at + batch_cycles;
        free_at = finish;
        now = dispatch_at;
        busy_cycles += batch_cycles;
        makespan = makespan.max(finish);

        metrics.batches += 1;
        metrics.batch_requests_total += members.len() as u64;
        metrics.batch_n_total += total_n as u64;
        metrics.device_cycles += batch_cycles;
        for req in members.iter() {
            let share = batch_cycles * req.n as f64 / total_n as f64;
            metrics.completed += 1;
            metrics.latency_cycles.record(finish - req.arrival_cycle);
            completions.push(SimCompletion {
                id: req.id,
                model: model.clone(),
                arrival_cycle: req.arrival_cycle,
                dispatch_cycle: dispatch_at,
                finish_cycle: finish,
                batch_requests: members.len(),
                batch_n: total_n,
                charged_cycles: share,
                cold: fetch.is_cold(),
            });
        }
    }

    Ok(SimReport {
        completions,
        metrics,
        busy_cycles,
        makespan_cycles: makespan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{ModelRegistry, RegistryConfig};
    use crate::zoo::default_zoo;

    fn registry() -> ModelRegistry {
        let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
        for m in default_zoo(60).into_iter().take(2) {
            reg.register(&m.name, m.weights(), m.config);
        }
        reg
    }

    fn burst(model: &str, count: usize, n: usize, gap: f64) -> Vec<SimRequest> {
        (0..count)
            .map(|i| SimRequest {
                id: i,
                model: model.to_string(),
                arrival_cycle: i as f64 * gap,
                n,
            })
            .collect()
    }

    #[test]
    fn batched_coalesces_and_beats_unbatched() {
        let reg = registry();
        reg.warm_all().unwrap();
        let schedule = burst("attention-small", 16, 16, 100.0);
        let spec = GpuSpec::a100();
        let batched = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(spec.clone(), 256, 50_000.0),
        )
        .unwrap();
        let unbatched = simulate_schedule(&reg, &schedule, &SimConfig::unbatched(spec)).unwrap();
        assert_eq!(batched.completions.len(), 16);
        assert_eq!(unbatched.completions.len(), 16);
        assert!(unbatched.metrics.batches == 16, "one kernel per request");
        assert!(batched.metrics.batches < 16, "requests were coalesced");
        assert!(
            batched.makespan_cycles < unbatched.makespan_cycles,
            "batched {} vs unbatched {}",
            batched.makespan_cycles,
            unbatched.makespan_cycles
        );
        assert!(batched.requests_per_gcycle() > unbatched.requests_per_gcycle());
    }

    #[test]
    fn schedule_is_deterministic() {
        let reg = registry();
        reg.warm_all().unwrap();
        let mut schedule = burst("attention-small", 8, 8, 5_000.0);
        schedule.extend(
            burst("embedding-proj", 8, 8, 7_000.0)
                .into_iter()
                .map(|mut r| {
                    r.id += 100;
                    r
                }),
        );
        let cfg = SimConfig::batched(GpuSpec::a100(), 64, 20_000.0);
        let a = simulate_schedule(&reg, &schedule, &cfg).unwrap();
        let b = simulate_schedule(&reg, &schedule, &cfg).unwrap();
        let key = |r: &SimReport| -> Vec<(usize, u64, u64)> {
            r.completions
                .iter()
                .map(|c| (c.id, c.dispatch_cycle.to_bits(), c.finish_cycle.to_bits()))
                .collect()
        };
        assert_eq!(key(&a), key(&b), "bit-identical schedules");
        assert_eq!(a.makespan_cycles.to_bits(), b.makespan_cycles.to_bits());
    }

    #[test]
    fn cold_fetch_charges_the_timeline() {
        let schedule = burst("attention-small", 4, 8, 1_000.0);
        let cfg = SimConfig::batched(GpuSpec::a100(), 64, 10_000.0);

        let cold_reg = registry();
        let cold = simulate_schedule(&cold_reg, &schedule, &cfg).unwrap();
        let warm_reg = registry();
        warm_reg.warm_all().unwrap();
        let warm = simulate_schedule(&warm_reg, &schedule, &cfg).unwrap();
        assert!(cold.completions.iter().any(|c| c.cold));
        assert!(warm.completions.iter().all(|c| !c.cold));
        assert!(
            cold.makespan_cycles > warm.makespan_cycles,
            "cold start stalls the timeline"
        );
    }

    #[test]
    fn window_delays_dispatch_until_full_or_expired() {
        let reg = registry();
        reg.warm_all().unwrap();
        // Two requests 1000 cycles apart, window 5000: one batch.
        let schedule = burst("attention-small", 2, 8, 1_000.0);
        let joined = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 64, 5_000.0),
        )
        .unwrap();
        assert_eq!(joined.metrics.batches, 1);
        // Window 10 cycles: the second request misses the batch.
        let split = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 64, 10.0),
        )
        .unwrap();
        assert_eq!(split.metrics.batches, 2);
    }
}
