//! A DLMC-style model zoo: named vector-sparse weight matrices drawn
//! from the transformer shape distribution the paper evaluates on
//! (§4.3), sized so a full serving experiment plans in seconds.

use dlmc::{Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::JigsawConfig;

/// One zoo entry: a named weight matrix and the kernel config its
/// plans use.
#[derive(Clone, Debug)]
pub struct ZooModel {
    /// Registry name.
    pub name: String,
    /// Seeded generator for the stationary weights.
    pub spec: VectorSparseSpec,
    /// Kernel configuration to plan with.
    pub config: JigsawConfig,
}

impl ZooModel {
    /// Materializes the weight matrix.
    pub fn weights(&self) -> Matrix {
        self.spec.generate()
    }

    /// The model's reduction dimension (B operand height).
    pub fn k(&self) -> usize {
        self.spec.cols
    }

    /// The model's output dimension.
    pub fn m(&self) -> usize {
        self.spec.rows
    }
}

fn model(
    name: &str,
    rows: usize,
    cols: usize,
    sparsity: f64,
    v: usize,
    seed: u64,
    block_tile_m: usize,
) -> ZooModel {
    ZooModel {
        name: name.to_string(),
        spec: VectorSparseSpec {
            rows,
            cols,
            sparsity,
            v,
            dist: ValueDist::SmallInt,
            seed,
        },
        config: JigsawConfig::v4(block_tile_m),
    }
}

/// The default mixed zoo: four DLMC transformer-family shapes at the
/// paper's sparsity/vector-width design points. `seed` perturbs the
/// weight values, not the shapes, so two zoos with different seeds
/// serve the same traffic mix with different weights.
pub fn default_zoo(seed: u64) -> Vec<ZooModel> {
    vec![
        model(
            "attention-small",
            256,
            256,
            0.90,
            4,
            seed.wrapping_add(1),
            32,
        ),
        model(
            "embedding-proj",
            128,
            512,
            0.90,
            2,
            seed.wrapping_add(2),
            32,
        ),
        model("head-proj", 512, 64, 0.80, 4, seed.wrapping_add(3), 16),
        model("attention-qkv", 512, 512, 0.95, 8, seed.wrapping_add(4), 64),
    ]
}

/// A zoo of `count` models for sharded-serving experiments: cycles the
/// four [`default_zoo`] base shapes under distinct names
/// (`<base>-NNN`) and per-model weight seeds. Shapes repeat, so
/// planning cost stays proportional to the *distinct shapes actually
/// served*, while names (the shard-routing key) and weights are unique
/// per model.
pub fn scaled_zoo(count: usize, seed: u64) -> Vec<ZooModel> {
    let base = default_zoo(seed);
    (0..count)
        .map(|i| {
            let mut m = base[i % base.len()].clone();
            m.name = format!("{}-{i:03}", m.name);
            m.spec.seed = seed.wrapping_add(i as u64).wrapping_mul(0x9E37_79B9);
            m
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_zoo_has_unique_names_and_cycled_shapes() {
        let zoo = scaled_zoo(10, 3);
        assert_eq!(zoo.len(), 10);
        let names: std::collections::HashSet<&str> = zoo.iter().map(|m| m.name.as_str()).collect();
        assert_eq!(names.len(), 10, "names are unique");
        let base = default_zoo(3);
        for (i, m) in zoo.iter().enumerate() {
            assert_eq!(m.m(), base[i % base.len()].m());
            assert_eq!(m.k(), base[i % base.len()].k());
        }
        // Same (count, seed) reproduces the zoo exactly.
        let again = scaled_zoo(10, 3);
        for (a, b) in zoo.iter().zip(&again) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.spec.seed, b.spec.seed);
        }
    }

    #[test]
    fn default_zoo_shapes_are_tileable() {
        let zoo = default_zoo(7);
        assert_eq!(zoo.len(), 4);
        for m in &zoo {
            assert_eq!(m.m() % 16, 0, "{}", m.name);
            assert_eq!(m.k() % 16, 0, "{}", m.name);
            let w = m.weights();
            assert_eq!(w.rows, m.m());
            assert_eq!(w.cols, m.k());
            assert!(w.sparsity() > 0.5, "{} should be sparse", m.name);
        }
    }

    #[test]
    fn zoo_weights_are_seed_deterministic() {
        let a = default_zoo(9)[0].weights();
        let b = default_zoo(9)[0].weights();
        assert_eq!(a, b);
        let c = default_zoo(10)[0].weights();
        assert_ne!(a, c);
    }
}
