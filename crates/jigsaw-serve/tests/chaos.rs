//! Chaos suite for the resilience layer (DESIGN.md §12): seeded fault
//! schedules driven through the threaded server, the model registry,
//! and the deterministic virtual-clock simulator, asserting the three
//! invariants the layer promises:
//!
//! 1. **No hung ticket** — every admitted request reaches a terminal
//!    state even when workers panic mid-batch.
//! 2. **Typed terminal states** — failures surface as `ServeError` /
//!    `RegistryError` values, never as a crashed process.
//! 3. **Conservation** — `submitted = completed + failed + shed`
//!    (`ServeMetrics::conserves`), with admission rejections counted
//!    separately.
//!
//! The fault registry is process-global, so every test serializes on
//! one mutex and disarms (`fault::reset`) before releasing it.

use std::sync::{Mutex, MutexGuard};
use std::time::Duration;

use dlmc::{dense_rhs, ValueDist};
use gpu_sim::GpuSpec;
use jigsaw_core::fault::{self, points, FaultKind, FaultSpec};
use jigsaw_core::{execute_fast, CompiledKernel};
use jigsaw_serve::{
    default_zoo, generate_zipf_schedule, scaled_zoo, simulate_schedule, simulate_sharded,
    AdmitError, BreakerConfig, BreakerState, HealthConfig, HedgeConfig, ModelRegistry,
    RegistryConfig, RegistryError, ReplicationConfig, ServeConfig, ServeError, Server, ShardConfig,
    ShardRouter, ShardSimConfig, SimConfig, SimRequest, StealConfig, ZipfLoadSpec,
};
use proptest::prelude::*;
use std::sync::Arc;

static LOCK: Mutex<()> = Mutex::new(());

/// Serializes chaos tests and guarantees a disarmed registry on entry
/// (a previous test may have poisoned the mutex by panicking while
/// armed).
fn guard() -> MutexGuard<'static, ()> {
    let g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
    fault::reset();
    g
}

/// Seed for pinned chaos schedules. `JIGSAW_CHAOS_SEED` overrides the
/// per-test default, so CI can run the whole suite under a seed matrix
/// without touching the tests.
fn chaos_seed(default: u64) -> u64 {
    std::env::var("JIGSAW_CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn registry(take: usize) -> Arc<ModelRegistry> {
    let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
    for m in default_zoo(77).into_iter().take(take) {
        reg.register(&m.name, m.weights(), m.config);
    }
    Arc::new(reg)
}

fn burst(model: &str, count: usize, n: usize, gap: f64) -> Vec<SimRequest> {
    (0..count)
        .map(|i| SimRequest {
            id: i,
            model: model.to_string(),
            arrival_cycle: i as f64 * gap,
            n,
            deadline_cycles: None,
        })
        .collect()
}

/// Bounded wait that proves the no-hang invariant: a test fails loudly
/// instead of deadlocking the suite.
fn wait_bounded(t: jigsaw_serve::Ticket) -> Result<jigsaw_serve::SpmmResponse, ServeError> {
    t.wait_timeout(Duration::from_secs(30))
        .expect("ticket reached a terminal state (no hang)")
}

// ---------------------------------------------------------------------
// Worker panic isolation (threaded server)
// ---------------------------------------------------------------------

/// Regression test for the ticket-hang bug: a worker dying mid-batch
/// must fail every waiter, not strand them.
#[test]
fn killed_worker_mid_batch_fails_all_waiters_and_respawns() {
    let _g = guard();
    fault::inject(FaultSpec::once(points::WORKER_BATCH, FaultKind::Panic));
    let server = Server::start(
        registry(2),
        ServeConfig {
            workers: 1,
            max_wait: Duration::from_millis(5),
            ..ServeConfig::default()
        },
    );
    // Both requests land in the first (panicking) batch or, if the
    // worker dispatches eagerly, across two — either way every ticket
    // resolves.
    let t1 = server
        .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 1))
        .unwrap();
    let t2 = server
        .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 2))
        .unwrap();
    let (r1, r2) = (wait_bounded(t1), wait_bounded(t2));
    assert!(
        r1.is_err() || r2.is_err(),
        "the injected panic failed at least one request"
    );
    for r in [&r1, &r2] {
        if let Err(e) = r {
            assert_eq!(e, &ServeError::WorkerPanic, "typed terminal state");
        }
    }
    fault::reset();
    // The worker respawned: the server still serves.
    let resp = wait_bounded(
        server
            .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 3))
            .unwrap(),
    )
    .expect("respawned worker serves");
    assert_eq!((resp.rows, resp.cols), (256, 4));
    let metrics = server.shutdown();
    assert!(metrics.worker_panics >= 1, "panic was counted");
    assert!(metrics.failed >= 1);
    assert!(metrics.conserves(), "admitted = completed + failed + shed");
}

/// A fault injected at the fused-assembly point (`serve.assemble`)
/// degrades that batch to the unfused two-touch path — the request
/// still completes with a bit-identical product, no waiter hangs, and
/// the degrade is visible on `batch.fused_fallbacks`. Both the typed
/// error and the panic flavor must degrade, not fail.
#[test]
fn assembly_fault_degrades_to_unfused_path_without_hangs() {
    let _g = guard();
    let fused_opts = jigsaw_core::ExecOptions::builder()
        .fused_assembly(true)
        .build()
        .unwrap();
    let reg = ModelRegistry::new(RegistryConfig {
        exec_options: fused_opts,
        ..RegistryConfig::default()
    })
    .unwrap();
    for m in default_zoo(77).into_iter().take(2) {
        reg.register(&m.name, m.weights(), m.config);
    }
    let server = Server::start(
        Arc::new(reg),
        ServeConfig {
            workers: 1,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    // Warm up on the fused path and keep the product as the oracle.
    let b = dense_rhs(256, 4, ValueDist::SmallInt, 9);
    let oracle = wait_bounded(server.submit("attention-small", b.clone()).unwrap())
        .expect("fused warm-up serves");
    let fallbacks_before = jigsaw_obs::global().counter("batch.fused_fallbacks").get();
    for kind in [FaultKind::Error, FaultKind::Panic] {
        // Hit counters persist across `inject` calls, so clear them:
        // otherwise the second spec's `first_hit = 1` can never match.
        fault::reset();
        fault::inject(FaultSpec::once(points::SERVE_ASSEMBLE, kind));
        let resp = wait_bounded(server.submit("attention-small", b.clone()).unwrap())
            .expect("assembly fault degrades to the two-touch path, not a failure");
        assert_eq!(resp.c, oracle.c, "degraded batch is bit-identical");
    }
    assert!(
        jigsaw_obs::global().counter("batch.fused_fallbacks").get() >= fallbacks_before + 2,
        "both degrades were counted"
    );
    fault::reset();
    // An assembly fault never poisons the SIMD rung: the next batch is
    // fused again (fused_runs advances) and still bit-identical.
    let fused_runs_before = jigsaw_obs::global().counter("batch.fused_runs").get();
    let resp = wait_bounded(server.submit("attention-small", b.clone()).unwrap())
        .expect("fused path recovered");
    assert_eq!(resp.c, oracle.c);
    assert!(
        jigsaw_obs::global().counter("batch.fused_runs").get() > fused_runs_before,
        "recovery batch took the fused path"
    );
    let metrics = server.shutdown();
    assert_eq!(metrics.failed, 0, "no request failed");
    assert!(metrics.conserves());
}

/// A panic *inside* the batch (pool acquisition, after the registry
/// fetch) unwinds through the batch guard: same invariants.
#[test]
fn pool_fault_inside_batch_is_isolated() {
    let _g = guard();
    let server = Server::start(
        registry(2),
        ServeConfig {
            workers: 1,
            max_wait: Duration::from_millis(1),
            ..ServeConfig::default()
        },
    );
    // Warm the model first so the fault hits pool.acquire in the batch
    // path, not some allocation during planning.
    wait_bounded(
        server
            .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 0))
            .unwrap(),
    )
    .expect("warm-up serves");
    fault::inject(FaultSpec::once(points::POOL_ACQUIRE, FaultKind::Error));
    let failed = wait_bounded(
        server
            .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 1))
            .unwrap(),
    );
    assert_eq!(failed.unwrap_err(), ServeError::WorkerPanic);
    fault::reset();
    wait_bounded(
        server
            .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 2))
            .unwrap(),
    )
    .expect("server recovered");
    let metrics = server.shutdown();
    assert!(metrics.conserves());
}

/// An injected latency spike delays but does not fail the batch.
#[test]
fn latency_spike_completes_late_not_never() {
    let _g = guard();
    fault::inject(FaultSpec::once(
        points::WORKER_BATCH,
        FaultKind::Latency { ns: 20_000_000 },
    ));
    let server = Server::start(registry(2), ServeConfig::default());
    let started = std::time::Instant::now();
    let resp = wait_bounded(
        server
            .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 9))
            .unwrap(),
    )
    .expect("latency fault still completes");
    assert!(started.elapsed() >= Duration::from_millis(20));
    assert_eq!(resp.cols, 4);
    fault::reset();
    let metrics = server.shutdown();
    assert_eq!(metrics.failed, 0);
    assert!(metrics.conserves());
}

// ---------------------------------------------------------------------
// Deadlines and the circuit breaker (threaded server)
// ---------------------------------------------------------------------

#[test]
fn expired_deadline_sheds_before_dispatch() {
    let _g = guard();
    let server = Server::start(
        registry(2),
        ServeConfig {
            workers: 1,
            // Long batching window: the head sits in queue waiting for
            // co-riders, long past its deadline.
            max_wait: Duration::from_millis(250),
            ..ServeConfig::default()
        },
    );
    let t = server
        .submit_with_deadline(
            "attention-small",
            dense_rhs(256, 4, ValueDist::SmallInt, 1),
            Some(Duration::from_millis(2)),
        )
        .unwrap();
    let started = std::time::Instant::now();
    assert_eq!(wait_bounded(t).unwrap_err(), ServeError::DeadlineExceeded);
    assert!(
        started.elapsed() < Duration::from_millis(200),
        "shed at the deadline, not at the batch window"
    );
    let metrics = server.shutdown();
    assert_eq!(metrics.shed_expired, 1);
    assert_eq!(metrics.completed, 0);
    assert!(metrics.conserves());
}

#[test]
fn repeated_failures_open_the_breaker_and_fast_reject() {
    let _g = guard();
    fault::inject(FaultSpec::always(points::WORKER_BATCH, FaultKind::Panic));
    let server = Server::start(
        registry(2),
        ServeConfig {
            workers: 1,
            max_wait: Duration::from_millis(1),
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_window: 60e9, // 60 s: stays open for the test
                max_open_window: 60e9,
            },
            ..ServeConfig::default()
        },
    );
    for i in 0..2 {
        let r = wait_bounded(
            server
                .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, i))
                .unwrap(),
        );
        assert_eq!(r.unwrap_err(), ServeError::WorkerPanic);
    }
    assert_eq!(
        server.breaker_state("attention-small"),
        Some(BreakerState::Open),
        "two consecutive failures tripped the breaker"
    );
    let rejected = server
        .submit("attention-small", dense_rhs(256, 4, ValueDist::SmallInt, 9))
        .unwrap_err();
    assert!(
        matches!(rejected, jigsaw_serve::AdmitError::CircuitOpen { ref model, retry_after, shard }
            if model == "attention-small" && retry_after > Duration::ZERO && shard.is_none()),
        "open breaker fast-rejects with a retry hint: {rejected:?}"
    );
    // Another model is unaffected.
    fault::reset();
    wait_bounded(
        server
            .submit("embedding-proj", dense_rhs(512, 4, ValueDist::SmallInt, 1))
            .unwrap(),
    )
    .expect("healthy model keeps serving");
    let metrics = server.metrics();
    assert_eq!(metrics.breakers_open, 1);
    assert_eq!(metrics.rejected, 1);
    server.shutdown();
}

// ---------------------------------------------------------------------
// Artifact tier: corruption, retry, recovery
// ---------------------------------------------------------------------

fn artifact_registry(dir: &std::path::Path) -> ModelRegistry {
    let reg = ModelRegistry::new(RegistryConfig {
        artifact_dir: Some(dir.to_path_buf()),
        ..RegistryConfig::default()
    })
    .unwrap();
    for m in default_zoo(77).into_iter().take(1) {
        reg.register(&m.name, m.weights(), m.config);
    }
    reg
}

#[test]
fn transient_artifact_corruption_recovers_via_retry() {
    let _g = guard();
    let dir = std::env::temp_dir().join(format!("jigsaw-chaos-retry-{}", std::process::id()));
    let reg = artifact_registry(&dir);
    let name = reg.model_names().remove(0);
    reg.warm_all().unwrap(); // plans + writes the artifact
    reg.drop_resident(); // next fetch must disk-load
    let retries_before = jigsaw_obs::global().counter("registry.load_retries").get();
    fault::set_seed(chaos_seed(0xC0FFEE));
    fault::inject(FaultSpec::once(
        points::ARTIFACT_LOAD,
        FaultKind::CorruptBytes,
    ));
    let (model, fetch) = reg.fetch(&name).expect("one corrupt read is retried");
    assert!(fetch.is_cold());
    assert_eq!(model.name, name);
    let retries_after = jigsaw_obs::global().counter("registry.load_retries").get();
    assert!(retries_after > retries_before, "the retry was counted");
    fault::reset();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn persistent_artifact_corruption_is_a_typed_error_then_recovers() {
    let _g = guard();
    let dir = std::env::temp_dir().join(format!("jigsaw-chaos-corrupt-{}", std::process::id()));
    let reg = artifact_registry(&dir);
    let name = reg.model_names().remove(0);
    reg.warm_all().unwrap();
    reg.drop_resident();
    fault::set_seed(chaos_seed(0xBADCAB));
    fault::inject(FaultSpec::always(
        points::ARTIFACT_LOAD,
        FaultKind::CorruptBytes,
    ));
    match reg.fetch(&name) {
        Err(RegistryError::Io(_)) => {}
        other => panic!("expected a typed artifact error, got {other:?}"),
    }
    // Disarm: the same registry heals on the next fetch.
    fault::reset();
    let (_, fetch) = reg.fetch(&name).expect("clean read succeeds");
    assert!(fetch.is_cold());
    let _ = std::fs::remove_dir_all(&dir);
}

/// A kernel-tuning table corrupted in flight (CorruptBytes at the
/// artifact-load fault point) must not fail registry construction: the
/// poisoned file is quarantined aside as `tune_table.jgtn.corrupt`,
/// counted, and the registry serves normally — tuning regrows from
/// calibration.
#[test]
fn corrupt_tune_table_is_quarantined_not_fatal() {
    let _g = guard();
    let dir = std::env::temp_dir().join(format!("jigsaw-chaos-tune-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Persist a valid table into the artifact dir.
    let reg = ModelRegistry::new(RegistryConfig {
        artifact_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    })
    .unwrap();
    assert!(reg.persist_tuning().unwrap(), "artifact dir configured");
    drop(reg);
    assert!(dir.join("tune_table.jgtn").exists());

    let quarantined_before = jigsaw_obs::global().counter("tune.table_quarantined").get();
    fault::set_seed(chaos_seed(0xC0FFEE));
    fault::inject(FaultSpec::once(
        points::ARTIFACT_LOAD,
        FaultKind::CorruptBytes,
    ));
    // Construction survives the scrambled read.
    let reg = ModelRegistry::new(RegistryConfig {
        artifact_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    })
    .expect("corrupt tune table never fails construction");
    fault::reset();
    assert!(
        jigsaw_obs::global().counter("tune.table_quarantined").get() > quarantined_before,
        "quarantine was counted"
    );
    assert!(
        !dir.join("tune_table.jgtn").exists(),
        "poisoned table moved out of the load path"
    );
    assert!(
        dir.join("tune_table.jgtn.corrupt").exists(),
        "poisoned bytes kept for debugging"
    );
    // The registry still serves.
    for m in default_zoo(77).into_iter().take(1) {
        reg.register(&m.name, m.weights(), m.config);
    }
    let name = reg.model_names().remove(0);
    reg.get(&name).expect("registry serves after quarantine");
    // The next restart sees no table file at all — nothing re-parses
    // the known-bad bytes.
    let _clean = ModelRegistry::new(RegistryConfig {
        artifact_dir: Some(dir.clone()),
        ..RegistryConfig::default()
    })
    .unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------
// Graceful degradation: compile failure and SIMD poisoning
// ---------------------------------------------------------------------

/// Parity satellite: a model degraded by compile failure serves
/// bit-identical results to both `execute_fast` and the compiled
/// scalar rung.
#[test]
fn compile_failure_degrades_with_bit_identical_results() {
    let _g = guard();
    let fallbacks_before = jigsaw_obs::global().counter("degrade.fallbacks").get();
    fault::inject(FaultSpec::always(points::COMPILE, FaultKind::Error));
    let degraded_reg = registry(1);
    let name = degraded_reg.model_names().remove(0);
    let degraded = degraded_reg.get(&name).unwrap();
    assert!(degraded.is_degraded(), "compile fault forced the fallback");
    assert!(
        jigsaw_obs::global().counter("degrade.fallbacks").get() > fallbacks_before,
        "degradation was counted"
    );
    fault::reset();

    let healthy_reg = registry(1);
    let healthy = healthy_reg.get(&name).unwrap();
    assert!(!healthy.is_degraded());

    let b = dense_rhs(degraded.k(), 8, ValueDist::SmallInt, 42);
    let via_fallback = degraded.execute(&b);
    let via_fast = execute_fast(&degraded.format, &b);
    let via_scalar = CompiledKernel::compile(&healthy.format).execute_scalar(&b);
    assert_eq!(via_fallback, via_fast, "fallback = execute_fast, bit-exact");
    assert_eq!(via_fallback, via_scalar, "fallback = compiled scalar rung");
    assert_eq!(
        via_fallback,
        healthy.execute(&b),
        "degradation is invisible"
    );
}

/// A SIMD-path panic poisons that rung in place; the scalar rung
/// recomputes the same batch and every later one.
#[test]
fn simd_panic_poisons_to_scalar_with_correct_results() {
    let _g = guard();
    let reg = registry(1);
    let name = reg.model_names().remove(0);
    let model = reg.get(&name).unwrap();
    assert!(!model.is_degraded());
    let b = dense_rhs(model.k(), 8, ValueDist::SmallInt, 7);
    let expect = execute_fast(&model.format, &b);
    fault::inject(FaultSpec::once(points::EXECUTE, FaultKind::Panic));
    assert_eq!(
        model.execute(&b),
        expect,
        "panicked run recomputed on scalar"
    );
    fault::reset();
    assert!(model.is_degraded(), "SIMD rung is sticky-poisoned");
    assert_eq!(model.execute(&b), expect, "later runs stay correct");
}

/// Tuned selection under chaos: a panic out of the cost table's
/// measured winner poisons exactly that variant (shape-aware
/// poisoning), and the next execution slides to the next-cheapest
/// *unpoisoned* candidate — serving stays correct throughout, and the
/// poisoned winner never resurrects.
#[test]
fn tuned_winner_panic_falls_back_to_next_cheapest_unpoisoned_variant() {
    use jigsaw_core::compiled::{dispatch, tune};
    use jigsaw_core::{ExecOptions, KernelKind};

    let _g = guard();
    dispatch::unpoison_all();
    let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
    let m = &default_zoo(78)[0];
    reg.register_with_options("tuned-model", m.weights(), m.config, ExecOptions::tuned());
    let model = reg.get("tuned-model").unwrap();
    let b = dense_rhs(model.k(), 8, ValueDist::SmallInt, 9);
    let expect = execute_fast(&model.format, &b);

    // Rank the portable candidates for this model's exact workload
    // bucket at costs no real measurement can beat: narrow_n wins,
    // scalar is the runner-up.
    let wl = CompiledKernel::compile(&model.format).workload(8);
    let table = tune::table();
    table.seed_cell(KernelKind::NarrowN, wl, 1e-12);
    table.seed_cell(KernelKind::Scalar, wl, 2e-12);
    assert_eq!(
        dispatch::selected_kind_shaped(&ExecOptions::tuned(), Some(wl)),
        KernelKind::NarrowN,
        "cost table ranks the seeded winner first"
    );

    // The winner panics mid-execution: the run recomputes on the
    // degrade ladder and exactly the tuned pick is poisoned.
    fault::inject(FaultSpec::once(points::EXECUTE, FaultKind::Panic));
    assert_eq!(model.execute(&b), expect, "panicked run still answers");
    fault::reset();
    assert!(model.is_degraded(), "tuned winner is sticky-poisoned");
    let next = dispatch::selected_kind_shaped(&ExecOptions::tuned(), Some(wl));
    assert_ne!(next, KernelKind::NarrowN, "poisoned winner is skipped");
    assert_eq!(model.execute(&b), expect, "fallback keeps serving");
    dispatch::unpoison_all();
}

// ---------------------------------------------------------------------
// Shard router chaos (DESIGN.md §14): a dead shard stays a dead shard
// ---------------------------------------------------------------------

fn shard_router(
    shards: usize,
    replication: ReplicationConfig,
) -> (ShardRouter, Vec<jigsaw_serve::ZooModel>) {
    let zoo = scaled_zoo(8, 21);
    let router = ShardRouter::start(
        ShardConfig::new(shards)
            .with_replication(replication)
            .with_steal(StealConfig::threshold(8)),
        RegistryConfig::default(),
        ServeConfig {
            workers: 1,
            max_wait: Duration::from_micros(200),
            ..ServeConfig::default()
        },
    );
    for m in &zoo {
        router.register(&m.name, m.weights(), m.config);
    }
    (router, zoo)
}

/// The tentpole isolation contract: killing one shard's worker stack
/// mid-traffic fails over replicated models, rejects unreplicated ones
/// with a typed error naming the dead shard, and strands no waiter.
#[test]
fn killed_shard_isolates_failure_without_hanging_waiters() {
    let _g = guard();
    let (router, zoo) = shard_router(4, ReplicationConfig::host_ns(4, 2, 60_000_000_000));
    // Promote one model past the threshold so it holds a replica.
    let hot = &zoo[0];
    for i in 0..8 {
        wait_bounded(
            router
                .submit(&hot.name, dense_rhs(hot.k(), 2, ValueDist::SmallInt, i))
                .unwrap(),
        )
        .expect("served before the kill");
    }
    assert!(router.is_hot(&hot.name), "replica exists before the kill");
    let home = router.home_shard(&hot.name);
    // A model that is NOT replicated and homes on the doomed shard.
    let pinned = zoo[1..]
        .iter()
        .find(|m| router.home_shard(&m.name) == home)
        .cloned();
    // In-flight work on the doomed shard must resolve, not hang: the
    // kill drains its queues into typed terminal states.
    let inflight: Vec<_> = (0..4)
        .filter_map(|i| {
            router
                .submit(
                    &hot.name,
                    dense_rhs(hot.k(), 2, ValueDist::SmallInt, 100 + i),
                )
                .ok()
        })
        .collect();
    let killed = router.kill_shard(home).expect("first kill wins");
    assert!(killed.conserves(), "drained shard ledger balances");
    for t in inflight {
        // Completed before the kill, or typed-failed by the drain —
        // either way `wait_bounded` proves no waiter hangs.
        let _ = wait_bounded(t);
    }
    // Replicated model keeps serving from the surviving replica.
    wait_bounded(
        router
            .submit(&hot.name, dense_rhs(hot.k(), 2, ValueDist::SmallInt, 999))
            .expect("replica admits"),
    )
    .expect("replica serves after the kill");
    // Unreplicated model homed on the dead shard rejects typed.
    if let Some(pinned) = pinned {
        let err = router
            .submit(
                &pinned.name,
                dense_rhs(pinned.k(), 2, ValueDist::SmallInt, 1),
            )
            .unwrap_err();
        assert_eq!(
            err,
            AdmitError::ShardUnavailable {
                model: pinned.name.clone(),
                shard: home,
            },
            "typed rejection names the dead shard"
        );
    }
    // Models homed elsewhere never notice.
    let survivor = zoo
        .iter()
        .find(|m| router.home_shard(&m.name) != home)
        .expect("four shards split eight models");
    wait_bounded(
        router
            .submit(
                &survivor.name,
                dense_rhs(survivor.k(), 2, ValueDist::SmallInt, 7),
            )
            .unwrap(),
    )
    .expect("isolation: surviving shard unaffected");
    let metrics = router.shutdown();
    for (s, m) in metrics.per_shard.iter().enumerate() {
        assert!(m.conserves(), "shard {s} ledger balances");
    }
}

/// An injected `shard.route` fault is a typed, counted router-level
/// rejection — no shard sees the request, and the router recovers the
/// moment the fault disarms.
#[test]
fn shard_route_fault_rejects_typed_then_recovers() {
    let _g = guard();
    let (router, zoo) = shard_router(2, ReplicationConfig::disabled());
    let m = &zoo[0];
    fault::inject(FaultSpec::once(points::SHARD_ROUTE, FaultKind::Error));
    let err = router
        .submit(&m.name, dense_rhs(m.k(), 2, ValueDist::SmallInt, 1))
        .unwrap_err();
    assert_eq!(
        err,
        AdmitError::ShardUnavailable {
            model: m.name.clone(),
            shard: router.home_shard(&m.name),
        },
        "route fault surfaces as a typed shard rejection"
    );
    fault::reset();
    wait_bounded(
        router
            .submit(&m.name, dense_rhs(m.k(), 2, ValueDist::SmallInt, 2))
            .unwrap(),
    )
    .expect("router recovered");
    let metrics = router.shutdown();
    assert_eq!(metrics.route_faults, 1, "route fault was counted");
    assert_eq!(
        metrics.per_shard.iter().map(|m| m.submitted).sum::<u64>(),
        1
    );
}

/// An armed `shard.forward` fault degrades the redirect: every request
/// still runs on its round-robin target, so the forwarded counter must
/// stay zero while traffic completes normally.
#[test]
fn shard_forward_fault_degrades_to_original_target() {
    let _g = guard();
    let (router, zoo) = shard_router(4, ReplicationConfig::host_ns(4, 2, 60_000_000_000));
    let hot = &zoo[0];
    fault::inject(FaultSpec::always(points::SHARD_FORWARD, FaultKind::Error));
    let tickets: Vec<_> = (0..24)
        .map(|i| {
            router
                .submit(&hot.name, dense_rhs(hot.k(), 2, ValueDist::SmallInt, i))
                .expect("forward fault never blocks admission")
        })
        .collect();
    for t in tickets {
        wait_bounded(t).expect("degraded routing still serves");
    }
    fault::reset();
    let metrics = router.shutdown();
    assert_eq!(
        metrics.forwarded, 0,
        "armed fault suppressed every redirect"
    );
    assert_eq!(
        metrics.per_shard.iter().map(|m| m.completed).sum::<u64>(),
        24
    );
}

/// A breaker tripped inside one shard fast-rejects with that shard's
/// id attached and the reject counted per shard — the caller can tell
/// *which* shard is refusing without a round trip.
#[test]
fn tripped_shard_breaker_reports_owning_shard() {
    let _g = guard();
    let zoo = scaled_zoo(8, 21);
    let router = ShardRouter::start(
        ShardConfig::new(2),
        RegistryConfig::default(),
        ServeConfig {
            workers: 1,
            max_wait: Duration::from_millis(1),
            breaker: BreakerConfig {
                failure_threshold: 2,
                open_window: 60e9,
                max_open_window: 60e9,
            },
            ..ServeConfig::default()
        },
    );
    for m in &zoo {
        router.register(&m.name, m.weights(), m.config);
    }
    let victim = &zoo[0];
    let home = router.home_shard(&victim.name);
    fault::inject(FaultSpec::always(points::WORKER_BATCH, FaultKind::Panic));
    for i in 0..2 {
        let r = wait_bounded(
            router
                .submit(
                    &victim.name,
                    dense_rhs(victim.k(), 2, ValueDist::SmallInt, i),
                )
                .unwrap(),
        );
        assert_eq!(r.unwrap_err(), ServeError::WorkerPanic);
    }
    fault::reset();
    let rejected = router
        .submit(
            &victim.name,
            dense_rhs(victim.k(), 2, ValueDist::SmallInt, 9),
        )
        .unwrap_err();
    assert!(
        matches!(rejected, AdmitError::CircuitOpen { ref model, retry_after, shard }
            if model == &victim.name && retry_after > Duration::ZERO && shard == Some(home)),
        "fast-reject names the owning shard: {rejected:?}"
    );
    let metrics = router.shutdown();
    assert_eq!(
        metrics.per_shard[home].breaker_rejects, 1,
        "counted on the owner"
    );
    assert_eq!(metrics.breaker_rejects(), 1, "router-level sum agrees");
}

/// `revive_shard` is the exact inverse of `kill_shard`, and idempotent:
/// kill → typed rejection, revive → serves again, second revive → no-op
/// returning `false`. The revived shard's fresh ledger must balance.
#[test]
fn killed_shard_revives_and_serves_again() {
    let _g = guard();
    let (router, zoo) = shard_router(2, ReplicationConfig::disabled());
    let m = &zoo[0];
    let home = router.home_shard(&m.name);
    wait_bounded(
        router
            .submit(&m.name, dense_rhs(m.k(), 2, ValueDist::SmallInt, 1))
            .unwrap(),
    )
    .expect("serves before the kill");

    let killed = router.kill_shard(home).expect("first kill wins");
    assert!(killed.conserves(), "drained shard ledger balances");
    assert_eq!(
        router
            .submit(&m.name, dense_rhs(m.k(), 2, ValueDist::SmallInt, 2))
            .unwrap_err(),
        AdmitError::ShardUnavailable {
            model: m.name.clone(),
            shard: home,
        },
        "dead shard rejects typed"
    );

    // Reviving a live shard is a no-op; reviving the dead one works once.
    assert!(!router.revive_shard(1 - home), "live shard: nothing to do");
    assert!(router.revive_shard(home), "dead shard comes back");
    assert!(!router.revive_shard(home), "second revive is a no-op");
    wait_bounded(
        router
            .submit(&m.name, dense_rhs(m.k(), 2, ValueDist::SmallInt, 3))
            .expect("revived shard admits"),
    )
    .expect("revived shard serves");

    let metrics = router.shutdown();
    assert_eq!(metrics.revived, 1, "exactly one revival counted");
    for (s, m) in metrics.per_shard.iter().enumerate() {
        assert!(m.conserves(), "shard {s} ledger balances");
    }
}

/// An armed `shard.slow` fault stalls the routed request but never
/// fails it: the submit completes late with the right answer and the
/// ledger stays balanced.
#[test]
fn shard_slow_fault_delays_but_serves() {
    let _g = guard();
    let (router, zoo) = shard_router(2, ReplicationConfig::disabled());
    let m = &zoo[0];
    fault::inject(FaultSpec::once(
        points::SHARD_SLOW,
        FaultKind::Latency { ns: 20_000_000 },
    ));
    let t0 = std::time::Instant::now();
    let resp = wait_bounded(
        router
            .submit(&m.name, dense_rhs(m.k(), 2, ValueDist::SmallInt, 1))
            .unwrap(),
    )
    .expect("slow is not dead");
    fault::reset();
    assert!(
        t0.elapsed() >= Duration::from_millis(20),
        "injected stall was observed: {:?}",
        t0.elapsed()
    );
    assert_eq!(resp.rows, m.m());
    let metrics = router.shutdown();
    assert_eq!(
        metrics.per_shard.iter().map(|m| m.completed).sum::<u64>(),
        1
    );
}

// ---------------------------------------------------------------------
// Tail tolerance: stragglers, hedging, health ejection (DESIGN.md §17)
// ---------------------------------------------------------------------

/// Builds a warm registry over the scaled zoo for straggler sims.
fn straggler_registry(seed: u64) -> (ModelRegistry, Vec<SimRequest>) {
    let zoo = scaled_zoo(8, 33);
    let reg = ModelRegistry::new(RegistryConfig {
        budget_bytes: 1 << 30,
        ..RegistryConfig::default()
    })
    .unwrap();
    for m in &zoo {
        reg.register(&m.name, m.weights(), m.config);
    }
    reg.warm_all().unwrap();
    let schedule = generate_zipf_schedule(
        &zoo,
        &ZipfLoadSpec {
            requests: 1200,
            seed,
            mean_gap_cycles: 300.0,
            ..ZipfLoadSpec::default()
        },
    )
    .into_iter()
    .map(|z| z.req)
    .collect();
    (reg, schedule)
}

/// The ISSUE's acceptance bar, asserted end to end: with one shard a
/// 10× straggler, turning on health scoring + hedged requests bounds
/// the tail (hedged p99 ≤ 0.5× unhedged p99 at identical offered load)
/// while the retry budget keeps total executed work within 1 + budget
/// fraction of the unhedged run.
#[test]
fn hedging_bounds_p99_under_straggler_within_work_budget() {
    let _g = guard();
    let (reg, schedule) = straggler_registry(chaos_seed(47));
    let base = |cfg: ShardConfig| {
        ShardSimConfig::new(
            cfg.with_replication(ReplicationConfig::cycles(32, 2, 500_000.0))
                .with_steal(StealConfig::threshold(8)),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        )
        .with_straggler(0, 10.0)
    };
    let unprotected = simulate_sharded(&reg, &schedule, &base(ShardConfig::new(4)));
    let protected = simulate_sharded(
        &reg,
        &schedule,
        &base(
            ShardConfig::new(4)
                .with_health(HealthConfig::cycles())
                .with_hedge(HedgeConfig::cycles()),
        ),
    );
    assert!(unprotected.totals.conserves() && protected.totals.conserves());
    assert!(
        protected.hedges > 0 || protected.health_ejections > 0,
        "tail tolerance engaged against the straggler"
    );
    let (up99, pp99) = (
        unprotected.latency_cycles.percentile(99.0),
        protected.latency_cycles.percentile(99.0),
    );
    assert!(
        pp99 <= 0.5 * up99,
        "hedged p99 {pp99:.0} vs unhedged p99 {up99:.0}: tail not bounded"
    );
    let work =
        |r: &jigsaw_serve::ShardSimReport| r.lanes.iter().map(|l| l.busy_cycles).sum::<f64>();
    assert!(
        work(&protected) <= 1.1 * work(&unprotected),
        "work amplification {:.3} exceeds the retry budget",
        work(&protected) / work(&unprotected)
    );
}

/// A `shard.slow` fault in the virtual-clock sharded sim is
/// deterministic chaos: the armed run visibly stretches the makespan
/// versus the clean run, two identically-armed runs replay bit-exactly,
/// and the ledger conserves throughout.
#[test]
fn shard_slow_sim_fault_is_deterministic_and_visible() {
    let _g = guard();
    let (reg, schedule) = straggler_registry(chaos_seed(0x51_0C0DE));
    let cfg = || {
        ShardSimConfig::new(
            ShardConfig::new(2).with_steal(StealConfig::disabled()),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        )
    };
    let clean = simulate_sharded(&reg, &schedule, &cfg());

    let slow = |seed: u64| {
        fault::reset();
        fault::set_seed(seed);
        fault::inject(
            FaultSpec::at(points::SHARD_SLOW, FaultKind::Latency { ns: 2_000_000 }, 1).times(8),
        );
        let r = simulate_sharded(&reg, &schedule, &cfg());
        fault::reset();
        r
    };
    let a = slow(chaos_seed(0xD15C));
    let b = slow(chaos_seed(0xD15C));
    assert!(clean.totals.conserves() && a.totals.conserves());
    assert!(
        a.makespan_cycles > clean.makespan_cycles,
        "injected stalls stretch the makespan: {} vs {}",
        a.makespan_cycles,
        clean.makespan_cycles
    );
    assert_eq!(
        a.makespan_cycles.to_bits(),
        b.makespan_cycles.to_bits(),
        "armed runs replay bit-exactly"
    );
    assert_eq!(
        a.latency_cycles.percentile(99.0).to_bits(),
        b.latency_cycles.percentile(99.0).to_bits()
    );
}

// ---------------------------------------------------------------------
// Virtual-clock chaos: pinned seeds, then randomized schedules
// ---------------------------------------------------------------------

fn sim_registry() -> ModelRegistry {
    let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
    for m in default_zoo(77).into_iter().take(2) {
        reg.register(&m.name, m.weights(), m.config);
    }
    reg
}

/// Pinned fault schedules through the simulator: plan errors, plan
/// panics, and deadline pressure — every request terminal, every
/// failure typed, the ledger conserved.
#[test]
fn pinned_sim_fault_schedules_conserve_requests() {
    let _g = guard();
    let cases: [(u64, FaultKind); 2] = [(0xC0FFEE, FaultKind::Error), (0xBADCAB, FaultKind::Panic)];
    for (seed, kind) in cases {
        fault::reset();
        fault::set_seed(chaos_seed(seed));
        // The two models' first (cold) fetches fail; the re-fetches
        // behind them succeed.
        fault::inject(FaultSpec::at(points::PLAN, kind, 1).times(2));
        let reg = sim_registry();
        let mut schedule = burst("attention-small", 8, 8, 40_000.0);
        schedule.extend(
            burst("embedding-proj", 8, 8, 40_000.0)
                .into_iter()
                .map(|mut r| {
                    r.id += 100;
                    r.arrival_cycle += 5_000.0;
                    r
                }),
        );
        let report = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 64, 10_000.0),
        );
        fault::reset();
        assert!(report.metrics.failed > 0, "seed {seed:#x}: faults fired");
        assert!(report.metrics.completed > 0, "seed {seed:#x}: recovered");
        assert!(report.metrics.conserves(), "seed {seed:#x}: conservation");
        assert_eq!(
            report.completions.len() + report.failures.len() + report.rejected_ids.len(),
            schedule.len(),
            "seed {seed:#x}: every request reached a terminal state"
        );
        for f in &report.failures {
            match (&f.error, kind) {
                (ServeError::Registry(_), FaultKind::Error) => {}
                (ServeError::WorkerPanic, FaultKind::Panic) => {}
                (e, k) => panic!("seed {seed:#x}: fault {k:?} surfaced as {e:?}"),
            }
        }
        if kind == FaultKind::Panic {
            assert!(report.metrics.worker_panics > 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Randomized fault schedules over the deterministic simulator:
    /// whatever fires, wherever it fires, the invariants hold.
    #[test]
    fn random_fault_schedules_keep_the_invariants(
        seed in any::<u64>(),
        requests in 4usize..16,
        kind_sel in 0u8..4,
        first_hit in 1u64..4,
        count in 1u64..3,
        deadline_every in 0usize..4,
    ) {
        let _g = guard();
        fault::set_seed(seed);
        match kind_sel {
            1 => fault::inject(FaultSpec::at(points::PLAN, FaultKind::Error, first_hit).times(count)),
            2 => fault::inject(FaultSpec::at(points::PLAN, FaultKind::Panic, first_hit).times(count)),
            3 => fault::inject(FaultSpec::at(points::COMPILE, FaultKind::Error, first_hit).times(count)),
            _ => {}
        }
        let reg = sim_registry();
        let mut schedule = burst("attention-small", requests, 8, 30_000.0);
        if deadline_every > 0 {
            for r in schedule.iter_mut().filter(|r| r.id % deadline_every == 0) {
                r.deadline_cycles = Some(20_000.0);
            }
        }
        let report = simulate_schedule(
            &reg,
            &schedule,
            &SimConfig::batched(GpuSpec::a100(), 64, 10_000.0),
        );
        fault::reset();
        prop_assert!(report.metrics.conserves(), "conservation: {:?}", report.metrics);
        prop_assert_eq!(
            report.completions.len() + report.failures.len() + report.rejected_ids.len(),
            schedule.len()
        );
        for f in &report.failures {
            prop_assert!(
                matches!(
                    f.error,
                    ServeError::Registry(_) | ServeError::WorkerPanic | ServeError::DeadlineExceeded
                ),
                "untyped terminal state {:?}",
                f.error
            );
        }
        // A compile fault degrades, never fails: the model still serves.
        if kind_sel == 3 {
            prop_assert_eq!(report.metrics.failed, 0, "compile faults degrade, not fail");
        }
    }
}
