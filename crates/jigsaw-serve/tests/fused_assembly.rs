//! Differential suite for fused batched-B assembly (`assemble_panels`
//! + the registry's fused batch path).
//!
//! Contract under test (DESIGN.md §16): emitting each part's F16
//! columns directly into panel-major f32 scratch is **bit-exact** with
//! the two-touch oracle — `concat_columns` into one `Matrix`, then the
//! kernel's phase-1 panelization — across ragged part widths, odd
//! total N, narrow panels (multi-panel batches), and every part count;
//! and the registry's fused batch execution returns bit-identical
//! products to the unfused path while reporting which path ran.

use proptest::prelude::*;

use dlmc::{dense_rhs, Matrix, ValueDist, VectorSparseSpec};
use jigsaw_core::{panel_cuts, panel_width, panelize_into, ExecOptions, JigsawConfig};
use jigsaw_serve::{assemble_panels, concat_columns, BatchError, ModelRegistry, RegistryConfig};

/// The two assembly paths over the same parts, compared bit-for-bit.
fn assert_fused_matches_two_touch(parts: &[&Matrix]) {
    let k = parts[0].rows;
    let total: usize = parts.iter().map(|p| p.cols).sum();
    let mut fused = vec![0.0f32; k * total];
    assert_eq!(assemble_panels(parts, &mut fused), Ok((k, total)));
    let cat = concat_columns(parts).expect("oracle concat");
    let mut oracle = vec![0.0f32; k * total];
    panelize_into(&cat, &mut oracle).expect("oracle panelize");
    assert_eq!(fused, oracle, "fused emit differs from two-touch oracle");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Ragged widths, odd N, arbitrary values: the fused emit is
    /// bit-exact with concat + phase-1 panelization.
    #[test]
    fn fused_emit_is_bit_exact_across_ragged_widths(
        k_blocks in 1usize..=6,
        widths in proptest::collection::vec(1usize..=13, 1..=5),
        seed in any::<u64>(),
    ) {
        let k = k_blocks * 16;
        let parts: Vec<Matrix> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| dense_rhs(k, w, ValueDist::Uniform, seed ^ (i as u64 + 1)))
            .collect();
        let refs: Vec<&Matrix> = parts.iter().collect();
        assert_fused_matches_two_touch(&refs);
    }
}

/// Narrow panels: a reduction dimension large enough that
/// `panel_width` bottoms out at its 32-column clamp, so a modest batch
/// spans several panels and parts straddle panel boundaries.
#[test]
fn fused_emit_handles_multi_panel_batches() {
    let k = 16 * 1024; // panel_width(16384, ·) = 32
    let total = 77; // 3 panels: 32 + 32 + 13
    assert_eq!(panel_width(k, total), 32);
    assert_eq!(panel_cuts(k, total), vec![(0, 32), (32, 32), (64, 13)]);
    // Widths chosen so part boundaries and panel boundaries interleave
    // (parts at 0, 30, 47, 59; panels at 0, 32, 64).
    let widths = [30usize, 17, 12, 18];
    assert_eq!(widths.iter().sum::<usize>(), total);
    let parts: Vec<Matrix> = widths
        .iter()
        .enumerate()
        .map(|(i, &w)| dense_rhs(k, w, ValueDist::Uniform, 90 + i as u64))
        .collect();
    let refs: Vec<&Matrix> = parts.iter().collect();
    assert_fused_matches_two_touch(&refs);
}

/// A single part is also a valid "batch": the fused emit then *is*
/// phase-1 panelization of that part.
#[test]
fn fused_emit_of_one_part_is_plain_panelization() {
    let b = dense_rhs(64, 19, ValueDist::Uniform, 7);
    let mut fused = vec![0.0f32; 64 * 19];
    assert_eq!(assemble_panels(&[&b], &mut fused), Ok((64, 19)));
    let mut oracle = vec![0.0f32; 64 * 19];
    panelize_into(&b, &mut oracle).unwrap();
    assert_eq!(fused, oracle);
}

/// The fused path's typed edges: an empty batch and an undersized
/// scratch come back as values, never panics.
#[test]
fn fused_emit_rejects_empty_batches_and_short_scratch() {
    let mut scratch = vec![0.0f32; 16];
    assert_eq!(
        assemble_panels(&[], &mut scratch),
        Err(BatchError::EmptyBatch)
    );
    let b = dense_rhs(8, 5, ValueDist::Uniform, 3);
    assert_eq!(
        assemble_panels(&[&b], &mut scratch),
        Err(BatchError::ScratchTooSmall {
            needed: 40,
            got: 16
        })
    );
}

/// End to end through the registry: a model registered with the
/// fused-assembly opt-in produces a bit-identical batch product to the
/// same model running the two-touch path, and each run reports which
/// path produced it.
#[test]
fn registry_fused_batch_matches_unfused_bit_exactly() {
    let weights = VectorSparseSpec {
        rows: 64,
        cols: 96,
        sparsity: 0.9,
        v: 4,
        dist: ValueDist::Uniform,
        seed: 11,
    }
    .generate();
    let fused_opts = ExecOptions::builder().fused_assembly(true).build().unwrap();
    let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
    reg.register_with_options("fused", weights.clone(), JigsawConfig::v4(32), fused_opts);
    reg.register("unfused", weights, JigsawConfig::v4(32));

    let parts: Vec<Matrix> = (0..4)
        .map(|i| dense_rhs(96, 3 + 2 * i, ValueDist::Uniform, 40 + i as u64))
        .collect();
    let refs: Vec<&Matrix> = parts.iter().collect();
    let pool = jigsaw_core::WorkspacePool::new();

    let (fused_model, _) = reg.fetch("fused").unwrap();
    let (unfused_model, _) = reg.fetch("unfused").unwrap();
    let (c_fused, ran_fused) = fused_model.execute_batch_pooled(&refs, &pool).unwrap();
    let (c_unfused, ran_unfused) = unfused_model.execute_batch_pooled(&refs, &pool).unwrap();
    assert!(ran_fused, "fused opt-in takes the fused path");
    assert!(!ran_unfused, "default options take the two-touch path");
    assert_eq!(&c_fused[..], &c_unfused[..], "products are bit-identical");
}
