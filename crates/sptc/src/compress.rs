//! 2:4 structured-sparsity checking and row compression.
//!
//! The SpTC requires the LHS operand to have at most two nonzero elements
//! in every aligned group of four consecutive row elements. Compression
//! removes the zeros: an `M x K` tile becomes `M x K/2` values plus 2-bit
//! positional metadata per kept element (paper Figure 3).

use crate::f16::F16;

/// Number of elements per 2:4 group.
pub const GROUP: usize = 4;
/// Nonzeros kept per group after compression.
pub const KEPT_PER_GROUP: usize = 2;

/// Returns true when every aligned group of 4 elements in `row` contains
/// at most 2 nonzeros. `row.len()` must be a multiple of 4.
pub fn row_satisfies_2_4(row: &[F16]) -> bool {
    debug_assert_eq!(row.len() % GROUP, 0);
    row.chunks_exact(GROUP)
        .all(|g| g.iter().filter(|v| !v.is_zero()).count() <= KEPT_PER_GROUP)
}

/// Returns true when the whole row-major `m x k` matrix satisfies 2:4.
pub fn matrix_satisfies_2_4(values: &[F16], k: usize) -> bool {
    debug_assert_eq!(values.len() % k, 0);
    debug_assert_eq!(k % GROUP, 0);
    values.chunks_exact(k).all(row_satisfies_2_4)
}

/// A compressed 2:4 row: `k/2` kept values and their 2-bit in-group
/// positions, in group order.
#[derive(Clone, Debug, PartialEq)]
pub struct CompressedRow {
    /// The kept values, two per original group of four.
    pub values: Vec<F16>,
    /// For each kept value, its position (0..=3) inside its group.
    pub indices: Vec<u8>,
}

/// Compresses one 2:4-satisfying row.
///
/// Groups with fewer than two nonzeros are padded with explicit zeros: the
/// hardware always keeps exactly `k/2` elements, using index positions for
/// the padded slots that point at (zero) elements. We follow cuSPARSELt's
/// convention of padding with the first unused position in the group, so
/// decompression is always well-defined.
///
/// Returns `None` if some group has more than two nonzeros.
pub fn compress_row_2_4(row: &[F16]) -> Option<CompressedRow> {
    debug_assert_eq!(row.len() % GROUP, 0);
    let mut values = Vec::with_capacity(row.len() / 2);
    let mut indices = Vec::with_capacity(row.len() / 2);
    for group in row.chunks_exact(GROUP) {
        let mut kept = 0usize;
        let mut used = [false; GROUP];
        for (pos, v) in group.iter().enumerate() {
            if !v.is_zero() {
                if kept == KEPT_PER_GROUP {
                    return None;
                }
                values.push(*v);
                indices.push(pos as u8);
                used[pos] = true;
                kept += 1;
            }
        }
        // Pad with the lowest unused positions (their values are zero).
        let mut pos = 0usize;
        while kept < KEPT_PER_GROUP {
            while used[pos] {
                pos += 1;
            }
            values.push(F16::ZERO);
            indices.push(pos as u8);
            used[pos] = true;
            kept += 1;
        }
    }
    Some(CompressedRow { values, indices })
}

/// Expands a compressed row back to its dense `k`-element form.
pub fn decompress_row_2_4(compressed: &CompressedRow, k: usize) -> Vec<F16> {
    debug_assert_eq!(compressed.values.len(), k / 2);
    let mut out = vec![F16::ZERO; k];
    for (slot, (&v, &idx)) in compressed
        .values
        .iter()
        .zip(compressed.indices.iter())
        .enumerate()
    {
        let group = slot / KEPT_PER_GROUP;
        out[group * GROUP + idx as usize] = v;
    }
    out
}

/// Compresses a row-major `m x k` tile. Returns `None` if any row violates
/// 2:4. Output rows are concatenated (`m * k/2` values / indices).
pub fn compress_tile_2_4(values: &[F16], k: usize) -> Option<(Vec<F16>, Vec<u8>)> {
    debug_assert_eq!(values.len() % k, 0);
    let m = values.len() / k;
    let mut out_vals = Vec::with_capacity(m * k / 2);
    let mut out_idx = Vec::with_capacity(m * k / 2);
    for row in values.chunks_exact(k) {
        let c = compress_row_2_4(row)?;
        out_vals.extend_from_slice(&c.values);
        out_idx.extend_from_slice(&c.indices);
    }
    Some((out_vals, out_idx))
}

/// Fraction of `groups` in a row-major matrix that satisfy 2:4. Useful for
/// the SparTA-style decomposition (how much of a matrix the SpTC can take).
pub fn fraction_of_compatible_groups(values: &[F16], k: usize) -> f64 {
    debug_assert_eq!(k % GROUP, 0);
    let mut ok = 0usize;
    let mut total = 0usize;
    for row in values.chunks_exact(k) {
        for g in row.chunks_exact(GROUP) {
            total += 1;
            if g.iter().filter(|v| !v.is_zero()).count() <= KEPT_PER_GROUP {
                ok += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        ok as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(v: f32) -> F16 {
        F16::from_f32(v)
    }

    #[test]
    fn detects_2_4_satisfaction() {
        assert!(row_satisfies_2_4(&[h(1.0), h(0.0), h(2.0), h(0.0)]));
        assert!(row_satisfies_2_4(&[h(0.0); 4]));
        assert!(!row_satisfies_2_4(&[h(1.0), h(1.0), h(2.0), h(0.0)]));
    }

    #[test]
    fn alignment_matters() {
        // Three nonzeros split across two groups is fine...
        assert!(row_satisfies_2_4(&[
            h(0.0),
            h(0.0),
            h(1.0),
            h(1.0),
            h(1.0),
            h(0.0),
            h(0.0),
            h(0.0)
        ]));
        // ...but three in one aligned group is not.
        assert!(!row_satisfies_2_4(&[
            h(0.0),
            h(1.0),
            h(1.0),
            h(1.0),
            h(1.0),
            h(0.0),
            h(0.0),
            h(0.0)
        ]));
    }

    #[test]
    fn compress_roundtrip_exact_pattern() {
        // Paper Figure 3's first-row example: nonzeros at positions (0,3)
        // and (1,2) of two consecutive groups.
        let row = [
            h(1.0),
            h(0.0),
            h(0.0),
            h(2.0),
            h(0.0),
            h(3.0),
            h(4.0),
            h(0.0),
        ];
        let c = compress_row_2_4(&row).unwrap();
        assert_eq!(c.indices, vec![0, 3, 1, 2]);
        assert_eq!(c.values, vec![h(1.0), h(2.0), h(3.0), h(4.0)]);
        assert_eq!(decompress_row_2_4(&c, 8), row.to_vec());
    }

    #[test]
    fn compress_pads_sparse_groups() {
        let row = [h(0.0), h(0.0), h(0.0), h(5.0)];
        let c = compress_row_2_4(&row).unwrap();
        assert_eq!(c.values.len(), 2);
        assert_eq!(c.values[0], h(5.0));
        assert!(c.values[1].is_zero());
        assert_eq!(c.indices[0], 3);
        assert_ne!(c.indices[1], 3, "pad slot must not collide");
        assert_eq!(decompress_row_2_4(&c, 4), row.to_vec());
    }

    #[test]
    fn compress_rejects_violation() {
        let row = [h(1.0), h(1.0), h(1.0), h(0.0)];
        assert!(compress_row_2_4(&row).is_none());
    }

    #[test]
    fn all_zero_row_compresses() {
        let row = [h(0.0); 8];
        let c = compress_row_2_4(&row).unwrap();
        assert!(c.values.iter().all(|v| v.is_zero()));
        assert_eq!(decompress_row_2_4(&c, 8), row.to_vec());
    }

    #[test]
    fn tile_compression_shapes() {
        let tile: Vec<F16> = (0..16 * 32)
            .map(|i| if i % 4 < 2 { h(1.0) } else { h(0.0) })
            .collect();
        let (vals, idx) = compress_tile_2_4(&tile, 32).unwrap();
        assert_eq!(vals.len(), 16 * 16);
        assert_eq!(idx.len(), 16 * 16);
    }

    #[test]
    fn compatible_group_fraction() {
        let m = [
            h(1.0),
            h(1.0),
            h(1.0),
            h(0.0), // bad group
            h(1.0),
            h(0.0),
            h(0.0),
            h(0.0), // good group
        ];
        assert_eq!(fraction_of_compatible_groups(&m, 8), 0.5);
    }
}
