//! Software IEEE 754 binary16 ("half") arithmetic.
//!
//! The Sparse Tensor Core operates on FP16 operands with FP32 accumulation
//! (HMMA semantics). The `half` crate is not part of this workspace's
//! dependency allowance, so we implement the conversions ourselves.
//! Conversions use round-to-nearest-even, matching both x86 `vcvtps2ph`
//! and the GPU's conversion behaviour.

use std::cmp::Ordering;
use std::fmt;

/// An IEEE 754 binary16 value stored as its bit pattern.
///
/// Arithmetic is performed by widening to `f32`, which is exact: every
/// product of two finite f16 values is exactly representable in f32, so
/// `a.to_f32() * b.to_f32()` reproduces the tensor core's exact
/// multiply-into-f32 step.
#[derive(Clone, Copy, PartialEq, Eq, Default, Hash)]
#[repr(transparent)]
pub struct F16(pub u16);

const EXP_MASK: u16 = 0x7C00;
const FRAC_MASK: u16 = 0x03FF;
const SIGN_MASK: u16 = 0x8000;

impl F16 {
    /// Positive zero.
    pub const ZERO: F16 = F16(0);
    /// One.
    pub const ONE: F16 = F16(0x3C00);
    /// Smallest positive normal value (2^-14).
    pub const MIN_POSITIVE: F16 = F16(0x0400);
    /// Largest finite value (65504).
    pub const MAX: F16 = F16(0x7BFF);
    /// Positive infinity.
    pub const INFINITY: F16 = F16(0x7C00);
    /// Negative infinity.
    pub const NEG_INFINITY: F16 = F16(0xFC00);
    /// A quiet NaN.
    pub const NAN: F16 = F16(0x7E00);

    /// Converts an `f32` to binary16 with round-to-nearest-even.
    pub fn from_f32(value: f32) -> F16 {
        let bits = value.to_bits();
        let sign = ((bits >> 16) & 0x8000) as u16;
        let exp = ((bits >> 23) & 0xFF) as i32;
        let frac = bits & 0x007F_FFFF;

        if exp == 0xFF {
            // Inf / NaN. Preserve the NaN payload's top bit so signalling
            // NaNs stay NaN after truncation.
            let nan_bits = if frac != 0 {
                (frac >> 13) as u16 | 0x0200
            } else {
                0
            };
            return F16(sign | EXP_MASK | nan_bits);
        }

        // Unbiased exponent.
        let unbiased = exp - 127;
        if unbiased > 15 {
            // Overflow to infinity (RNE rounds everything >= 65520 up).
            return F16(sign | EXP_MASK);
        }
        if unbiased >= -14 {
            // Normal range. 23 -> 10 fraction bits: shift out 13 bits with
            // round-to-nearest-even on the removed bits.
            let half_exp = (unbiased + 15) as u32;
            let mantissa = frac;
            let combined = (half_exp << 10) | (mantissa >> 13);
            let round_bits = mantissa & 0x1FFF;
            let mut out = combined;
            if round_bits > 0x1000 || (round_bits == 0x1000 && (out & 1) == 1) {
                out += 1; // May carry into the exponent; that is correct RNE.
            }
            return F16(sign | out as u16);
        }
        if unbiased >= -25 {
            // Subnormal range: make the implicit leading 1 explicit, then
            // shift right far enough that the result exponent field is 0.
            // unbiased = -15 needs one extra shift beyond the normal 13,
            // unbiased = -25 needs eleven extra (rounds to 0 or MIN subnormal).
            let mantissa = frac | 0x0080_0000;
            let shift = (-14 - unbiased) as u32 + 13; // total right shift, 14..=24
            let kept = mantissa >> shift;
            let rem = mantissa & ((1u32 << shift) - 1);
            let halfway = 1u32 << (shift - 1);
            let mut out = kept as u16;
            if rem > halfway || (rem == halfway && (out & 1) == 1) {
                out += 1;
            }
            return F16(sign | out);
        }
        // Underflow to (signed) zero.
        F16(sign)
    }

    /// Converts to `f32` exactly (every f16 is representable in f32).
    pub fn to_f32(self) -> f32 {
        let sign = u32::from(self.0 & SIGN_MASK) << 16;
        let exp = (self.0 & EXP_MASK) >> 10;
        let frac = u32::from(self.0 & FRAC_MASK);

        let bits = match exp {
            0 => {
                if frac == 0 {
                    sign // signed zero
                } else {
                    // Subnormal: value = frac * 2^-24. Normalize so the top
                    // set bit (position p = 31 - lz) becomes the implicit 1:
                    // exponent = p - 24, i.e. biased 127 + p - 24 = 134 - lz.
                    let lz = frac.leading_zeros(); // 22..=31
                    let exp32 = 134 - lz;
                    let frac32 = (frac << (lz - 8)) & 0x007F_FFFF;
                    sign | (exp32 << 23) | frac32
                }
            }
            0x1F => {
                if frac == 0 {
                    sign | 0x7F80_0000
                } else {
                    sign | 0x7F80_0000 | (frac << 13) | 0x0040_0000
                }
            }
            _ => {
                let exp32 = u32::from(exp) + 127 - 15;
                sign | (exp32 << 23) | (frac << 13)
            }
        };
        f32::from_bits(bits)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> F16 {
        F16(bits)
    }

    /// True when the value is exactly zero (either sign).
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 & !SIGN_MASK == 0
    }

    /// True for NaN bit patterns.
    #[inline]
    pub fn is_nan(self) -> bool {
        (self.0 & EXP_MASK) == EXP_MASK && (self.0 & FRAC_MASK) != 0
    }

    /// True for finite values.
    #[inline]
    pub fn is_finite(self) -> bool {
        (self.0 & EXP_MASK) != EXP_MASK
    }

    /// Convenience constructor from an integer; exact for |i| <= 2048.
    pub fn from_i32(i: i32) -> F16 {
        F16::from_f32(i as f32)
    }
}

impl fmt::Debug for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "F16({})", self.to_f32())
    }
}

impl fmt::Display for F16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f32())
    }
}

impl From<f32> for F16 {
    fn from(v: f32) -> Self {
        F16::from_f32(v)
    }
}

impl From<F16> for f32 {
    fn from(v: F16) -> Self {
        v.to_f32()
    }
}

impl PartialOrd for F16 {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f32().partial_cmp(&other.to_f32())
    }
}

/// Packs two f16 values into one `u32` register, low half first — the
/// layout tensor-core fragment registers use (`.f16x2`).
#[inline]
pub fn pack_f16x2(lo: F16, hi: F16) -> u32 {
    u32::from(lo.0) | (u32::from(hi.0) << 16)
}

/// Unpacks a `.f16x2` register into (low, high) halves.
#[inline]
pub fn unpack_f16x2(reg: u32) -> (F16, F16) {
    (F16((reg & 0xFFFF) as u16), F16((reg >> 16) as u16))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_one_constants() {
        assert_eq!(F16::ZERO.to_f32(), 0.0);
        assert_eq!(F16::ONE.to_f32(), 1.0);
        assert_eq!(F16::from_f32(1.0), F16::ONE);
        assert_eq!(F16::MAX.to_f32(), 65504.0);
    }

    #[test]
    fn small_integers_roundtrip_exactly() {
        for i in -2048..=2048 {
            let h = F16::from_i32(i);
            assert_eq!(h.to_f32(), i as f32, "i={i}");
        }
    }

    #[test]
    fn powers_of_two_roundtrip() {
        for e in -14..=15 {
            let v = (2.0f32).powi(e);
            assert_eq!(F16::from_f32(v).to_f32(), v);
        }
    }

    #[test]
    fn subnormals_roundtrip() {
        // Smallest subnormal is 2^-24.
        let tiny = (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(tiny).to_f32(), tiny);
        assert_eq!(F16::from_f32(tiny / 2.0).to_f32(), 0.0); // RNE ties-to-even -> 0
        let sub = 3.0 * (2.0f32).powi(-24);
        assert_eq!(F16::from_f32(sub).to_f32(), sub);
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        assert_eq!(F16::from_f32(1.0e6), F16::INFINITY);
        assert_eq!(F16::from_f32(-1.0e6), F16::NEG_INFINITY);
        assert_eq!(F16::from_f32(f32::INFINITY), F16::INFINITY);
    }

    #[test]
    fn nan_propagates() {
        assert!(F16::from_f32(f32::NAN).is_nan());
        assert!(F16::NAN.to_f32().is_nan());
    }

    #[test]
    fn round_to_nearest_even() {
        // 2049 is exactly halfway between 2048 and 2050 in f16; ties-to-even
        // picks 2048.
        assert_eq!(F16::from_f32(2049.0).to_f32(), 2048.0);
        // 2051 is halfway between 2050 and 2052; even mantissa is 2052.
        assert_eq!(F16::from_f32(2051.0).to_f32(), 2052.0);
    }

    #[test]
    fn signed_zero_preserved() {
        let nz = F16::from_f32(-0.0);
        assert!(nz.is_zero());
        assert_eq!(nz.to_f32().to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let a = F16::from_f32(1.5);
        let b = F16::from_f32(-3.25);
        let reg = pack_f16x2(a, b);
        assert_eq!(unpack_f16x2(reg), (a, b));
    }

    #[test]
    fn conversion_matches_reference_on_all_bit_patterns() {
        // Round-trip every f16 bit pattern through f32 and back; this is a
        // full-domain exactness check (NaNs compare by is_nan).
        for bits in 0..=u16::MAX {
            let h = F16::from_bits(bits);
            let back = F16::from_f32(h.to_f32());
            if h.is_nan() {
                assert!(back.is_nan());
            } else {
                assert_eq!(back.0, h.0, "bits={bits:#06x}");
            }
        }
    }
}
