//! Warp register-fragment layouts for tensor-core operands.
//!
//! A tensor-core instruction consumes its tiles distributed across the 32
//! lanes of a warp in a fixed pattern (PTX ISA "fragment" layouts). The
//! mapping functions here are the single source of truth; the loaders and
//! the mma executors are written against them, and tests verify that the
//! maps are bijections onto the tile coordinates.
//!
//! Coordinate convention: `(row, col)` into the logical tile. The lane id
//! decomposes as `lane = 4 * group + tid` with `group = lane / 4 ∈ 0..8`
//! and `tid = lane % 4 ∈ 0..4`.

use crate::f16::F16;

/// Warp size.
pub const WARP: usize = 32;

/// Which tensor-core operand a fragment holds.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FragKind {
    /// A operand of a 16×16 f16 tile (dense `m16n8k16` A, or the
    /// *compressed* A of sparse `m16n8k32`): 8 halves per lane.
    A16x16,
    /// B operand of a 16×8 f16 tile (dense `m16n8k16` B): 4 halves/lane.
    B16x8,
    /// B operand of a 32×8 f16 tile (sparse `m16n8k32` B): 8 halves/lane.
    B32x8,
    /// C/D accumulator of a 16×8 f32 tile: 4 floats per lane.
    Acc16x8,
}

impl FragKind {
    /// Tile dimensions `(rows, cols)`.
    pub fn dims(self) -> (usize, usize) {
        match self {
            FragKind::A16x16 => (16, 16),
            FragKind::B16x8 => (16, 8),
            FragKind::B32x8 => (32, 8),
            FragKind::Acc16x8 => (16, 8),
        }
    }

    /// Elements held by each lane.
    pub fn elems_per_lane(self) -> usize {
        let (r, c) = self.dims();
        r * c / WARP
    }

    /// Tile coordinate held by `lane`'s element slot `e`.
    ///
    /// The layouts follow the PTX ISA f16 fragment tables: a lane's
    /// `group` selects a row (A, accumulators) or column (B); its `tid`
    /// selects a pair of adjacent columns (A) or rows (B); higher element
    /// slots step by 8 through the tile.
    pub fn coord(self, lane: usize, e: usize) -> (usize, usize) {
        debug_assert!(lane < WARP);
        debug_assert!(e < self.elems_per_lane());
        let group = lane / 4;
        let tid = lane % 4;
        match self {
            // a0,a1 -> (g, 2t + {0,1});       a2,a3 -> (g+8, 2t + {0,1})
            // a4,a5 -> (g, 2t + 8 + {0,1});   a6,a7 -> (g+8, 2t + 8 + {0,1})
            FragKind::A16x16 => {
                let row = group + 8 * ((e >> 1) & 1);
                let col = 2 * tid + (e & 1) + 8 * (e >> 2);
                (row, col)
            }
            // b0,b1 -> (2t + {0,1}, g); b2,b3 -> (2t + 8 + {0,1}, g)
            FragKind::B16x8 => {
                let row = 2 * tid + (e & 1) + 8 * (e >> 1);
                (row, group)
            }
            // Same pattern continued through four 8-row slabs of K=32.
            FragKind::B32x8 => {
                let row = 2 * tid + (e & 1) + 8 * (e >> 1);
                (row, group)
            }
            // c0,c1 -> (g, 2t + {0,1}); c2,c3 -> (g+8, 2t + {0,1})
            FragKind::Acc16x8 => {
                let row = group + 8 * (e >> 1);
                let col = 2 * tid + (e & 1);
                (row, col)
            }
        }
    }
}

/// An f16 fragment: `regs[lane][slot]` = element `slot` of `lane`.
#[derive(Clone, Debug, PartialEq)]
pub struct F16Fragment {
    /// The operand layout this fragment follows.
    pub kind: FragKind,
    /// Per-lane element storage.
    pub regs: Vec<[F16; 8]>,
}

impl F16Fragment {
    /// Loads a fragment from a row-major tile slice of the right shape.
    pub fn load(kind: FragKind, tile: &[F16]) -> F16Fragment {
        let (rows, cols) = kind.dims();
        assert_eq!(tile.len(), rows * cols, "tile shape mismatch for {kind:?}");
        let per_lane = kind.elems_per_lane();
        let mut regs = vec![[F16::ZERO; 8]; WARP];
        for (lane, lane_regs) in regs.iter_mut().enumerate() {
            for (e, slot) in lane_regs.iter_mut().take(per_lane).enumerate() {
                let (r, c) = kind.coord(lane, e);
                *slot = tile[r * cols + c];
            }
        }
        F16Fragment { kind, regs }
    }

    /// Scatters the fragment back to a row-major tile.
    pub fn store(&self) -> Vec<F16> {
        let (rows, cols) = self.kind.dims();
        let per_lane = self.kind.elems_per_lane();
        let mut tile = vec![F16::ZERO; rows * cols];
        for (lane, lane_regs) in self.regs.iter().enumerate() {
            for (e, &v) in lane_regs.iter().take(per_lane).enumerate() {
                let (r, c) = self.kind.coord(lane, e);
                tile[r * cols + c] = v;
            }
        }
        tile
    }

    /// Element `e` of `lane`.
    #[inline]
    pub fn get(&self, lane: usize, e: usize) -> F16 {
        self.regs[lane][e]
    }
}

/// An f32 accumulator fragment (`Acc16x8` layout).
#[derive(Clone, Debug, PartialEq)]
pub struct AccFragment {
    /// `regs[lane][slot]`, 4 slots used per lane.
    pub regs: Vec<[f32; 4]>,
}

impl AccFragment {
    /// An all-zero accumulator.
    pub fn zero() -> AccFragment {
        AccFragment {
            regs: vec![[0.0; 4]; WARP],
        }
    }

    /// Loads from a row-major 16×8 f32 tile.
    pub fn load(tile: &[f32]) -> AccFragment {
        assert_eq!(tile.len(), 16 * 8);
        let mut regs = vec![[0.0f32; 4]; WARP];
        for (lane, lane_regs) in regs.iter_mut().enumerate() {
            for (e, slot) in lane_regs.iter_mut().enumerate() {
                let (r, c) = FragKind::Acc16x8.coord(lane, e);
                *slot = tile[r * 8 + c];
            }
        }
        AccFragment { regs }
    }

    /// Scatters back to a row-major 16×8 f32 tile.
    pub fn store(&self) -> Vec<f32> {
        let mut tile = vec![0.0f32; 16 * 8];
        for (lane, lane_regs) in self.regs.iter().enumerate() {
            for (e, &v) in lane_regs.iter().enumerate() {
                let (r, c) = FragKind::Acc16x8.coord(lane, e);
                tile[r * 8 + c] = v;
            }
        }
        self.check_dims();
        tile
    }

    fn check_dims(&self) {
        debug_assert_eq!(self.regs.len(), WARP);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_bijection(kind: FragKind) {
        let (rows, cols) = kind.dims();
        let mut seen = vec![false; rows * cols];
        for lane in 0..WARP {
            for e in 0..kind.elems_per_lane() {
                let (r, c) = kind.coord(lane, e);
                assert!(r < rows && c < cols, "{kind:?} lane {lane} e {e} oob");
                let idx = r * cols + c;
                assert!(!seen[idx], "{kind:?} coord ({r},{c}) assigned twice");
                seen[idx] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "{kind:?} does not cover the tile");
    }

    #[test]
    fn all_layouts_are_bijections() {
        assert_bijection(FragKind::A16x16);
        assert_bijection(FragKind::B16x8);
        assert_bijection(FragKind::B32x8);
        assert_bijection(FragKind::Acc16x8);
    }

    #[test]
    fn load_store_roundtrip() {
        for kind in [
            FragKind::A16x16,
            FragKind::B16x8,
            FragKind::B32x8,
            FragKind::Acc16x8,
        ] {
            let (rows, cols) = kind.dims();
            let tile: Vec<F16> = (0..rows * cols)
                .map(|i| F16::from_f32((i % 1024) as f32))
                .collect();
            let frag = F16Fragment::load(kind, &tile);
            assert_eq!(frag.store(), tile, "{kind:?}");
        }
    }

    #[test]
    fn acc_roundtrip() {
        let tile: Vec<f32> = (0..128).map(|i| i as f32 * 0.5).collect();
        let acc = AccFragment::load(&tile);
        assert_eq!(acc.store(), tile);
    }

    #[test]
    fn a_fragment_lane0_holds_topleft_pairs() {
        // Lane 0 (group 0, tid 0): a0 = (0,0), a1 = (0,1), a2 = (8,0).
        assert_eq!(FragKind::A16x16.coord(0, 0), (0, 0));
        assert_eq!(FragKind::A16x16.coord(0, 1), (0, 1));
        assert_eq!(FragKind::A16x16.coord(0, 2), (8, 0));
        assert_eq!(FragKind::A16x16.coord(0, 4), (0, 8));
    }

    #[test]
    fn b32_fragment_covers_four_k_slabs() {
        // Lane 0 should see rows 0,1,8,9,16,17,24,25 of column 0.
        let rows: Vec<usize> = (0..8).map(|e| FragKind::B32x8.coord(0, e).0).collect();
        assert_eq!(rows, vec![0, 1, 8, 9, 16, 17, 24, 25]);
    }
}
