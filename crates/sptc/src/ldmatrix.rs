//! `ldmatrix` semantics and shared-memory bank-conflict accounting.
//!
//! `ldmatrix.x{1,2,4}` loads 1/2/4 row-major 8×8 tiles of 16-bit elements
//! from shared memory into warp registers. Each of the first `8 * x`
//! lanes supplies the byte address of one 8-element row (16 bytes); the
//! hardware then distributes each tile so lane `r * 4 + c` receives the
//! `.b16x2` pair at row `r`, columns `2c, 2c + 1` of that tile.
//!
//! Shared memory is organised in 32 four-byte banks. Within one memory
//! transaction (8 row reads of 16 bytes each, i.e. one 8×8 tile phase),
//! two rows whose addresses hit the same bank serialize — the conflict
//! model the paper's §3.4.1 optimization targets.

use crate::f16::F16;

/// Number of shared-memory banks on Ampere.
pub const NUM_BANKS: usize = 32;
/// Bytes per bank word.
pub const BANK_WIDTH: usize = 4;
/// Bytes loaded per `ldmatrix` row (8 halves).
pub const ROW_BYTES: usize = 16;

/// The bank a byte address falls into.
#[inline]
pub fn bank_of(addr: usize) -> usize {
    (addr / BANK_WIDTH) % NUM_BANKS
}

/// Maximum number of accesses any single bank receives when the given
/// 16-byte row addresses are serviced in one phase. 1 = conflict-free;
/// `w` = the phase is replayed `w` times.
///
/// Each 16-byte row covers 4 consecutive banks, so 8 rows cover all 32
/// banks exactly once iff their starting banks are the 8 distinct
/// multiples of 4 (mod 32).
pub fn conflict_ways(row_addrs: &[usize]) -> usize {
    let mut per_bank = [0u32; NUM_BANKS];
    for &addr in row_addrs {
        debug_assert_eq!(addr % 2, 0, "f16 rows must be 2-byte aligned");
        let words = ROW_BYTES / BANK_WIDTH;
        let start = addr / BANK_WIDTH;
        for w in 0..words {
            per_bank[(start + w) % NUM_BANKS] += 1;
        }
    }
    per_bank.iter().copied().max().unwrap_or(0) as usize
}

/// Result of an `ldmatrix` execution: the loaded registers plus the
/// bank-conflict cost of each 8-row phase.
#[derive(Clone, Debug)]
pub struct LdmatrixResult {
    /// `regs[lane][tile]`: the `(lo, hi)` f16 pair lane received from
    /// each of the `x` tiles.
    pub regs: Vec<Vec<(F16, F16)>>,
    /// Conflict ways per phase (one phase per tile); total extra replays
    /// = `sum(ways) - phases`.
    pub phase_conflicts: Vec<usize>,
}

impl LdmatrixResult {
    /// Total number of phase replays beyond the conflict-free baseline.
    pub fn extra_replays(&self) -> usize {
        self.phase_conflicts
            .iter()
            .map(|&w| w.saturating_sub(1))
            .sum()
    }
}

/// Executes `ldmatrix.x{count}` against a shared-memory image.
///
/// * `smem` — the shared-memory contents as halves; byte address `a`
///   refers to `smem[a / 2]`.
/// * `row_addrs` — byte address of each tile row: `8 * count` entries,
///   tile `t` owning entries `8t..8t+8` (the addresses lanes `8t..8t+8`
///   would supply).
/// * `count` — 1, 2 or 4.
pub fn ldmatrix(smem: &[F16], row_addrs: &[usize], count: usize) -> LdmatrixResult {
    assert!(matches!(count, 1 | 2 | 4), "ldmatrix.x{count} not a shape");
    assert_eq!(row_addrs.len(), 8 * count);
    let mut regs = vec![vec![(F16::ZERO, F16::ZERO); count]; 32];
    let mut phase_conflicts = Vec::with_capacity(count);
    for t in 0..count {
        let rows = &row_addrs[8 * t..8 * t + 8];
        phase_conflicts.push(conflict_ways(rows));
        for (r, &addr) in rows.iter().enumerate() {
            debug_assert_eq!(addr % 2, 0);
            let base = addr / 2;
            for c in 0..4 {
                let lane = r * 4 + c;
                let lo = smem[base + 2 * c];
                let hi = smem[base + 2 * c + 1];
                regs[lane][t] = (lo, hi);
            }
        }
    }
    LdmatrixResult {
        regs,
        phase_conflicts,
    }
}

/// Conflict ways for storing a row-major tile of `row_halves` halves per
/// row into shared memory with a given padded stride (in halves), when a
/// warp writes 8 rows at a time with 128-bit (8-half) stores.
///
/// This models the *write* side of the paper's Figure 7: with
/// `stride == row_halves` (no padding) every row of a 64-wide f16 tile
/// starts at bank 0; padding by 4 banks (8 halves) staggers the rows.
pub fn store_conflict_ways(stride_halves: usize, rows: usize) -> usize {
    let addrs: Vec<usize> = (0..rows).map(|r| r * stride_halves * 2).collect();
    conflict_ways(&addrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unpadded_64wide_rows_conflict() {
        // 64 halves = 128 bytes per row: every row starts at bank 0.
        // 8 rows -> 8-way conflict (paper Figure 7 (a) without padding).
        assert_eq!(store_conflict_ways(64, 8), 8);
    }

    #[test]
    fn padding_eliminates_conflicts() {
        // Pad 4 banks (8 halves): stride 72 halves = 144 bytes = 36 words;
        // consecutive rows start 4 banks apart, 8 rows cover all 32 banks.
        assert_eq!(store_conflict_ways(64 + 8, 8), 1);
    }

    #[test]
    fn conflict_ways_counts_max_per_bank() {
        // Two rows at the same address: 2-way.
        assert_eq!(conflict_ways(&[0, 0]), 2);
        // Rows 16 bytes apart touch disjoint bank quads.
        assert_eq!(conflict_ways(&[0, 16, 32, 48]), 1);
        // 128 bytes apart wraps to the same banks.
        assert_eq!(conflict_ways(&[0, 128]), 2);
    }

    #[test]
    fn ldmatrix_x1_loads_tile() {
        // Shared memory holds an 8x8 tile at halves 0..64, row-major.
        let smem: Vec<F16> = (0..64).map(|i| F16::from_f32(i as f32)).collect();
        let addrs: Vec<usize> = (0..8).map(|r| r * 8 * 2).collect();
        let res = ldmatrix(&smem, &addrs, 1);
        // Lane r*4+c gets (tile[r][2c], tile[r][2c+1]).
        for r in 0..8 {
            for c in 0..4 {
                let lane = r * 4 + c;
                let (lo, hi) = res.regs[lane][0];
                assert_eq!(lo.to_f32(), (r * 8 + 2 * c) as f32);
                assert_eq!(hi.to_f32(), (r * 8 + 2 * c + 1) as f32);
            }
        }
        // 8 rows x 16B contiguous = all 32 banks once.
        assert_eq!(res.phase_conflicts, vec![1]);
    }

    #[test]
    fn ldmatrix_x4_reads_four_tiles() {
        let smem: Vec<F16> = (0..4 * 64)
            .map(|i| F16::from_f32((i % 512) as f32))
            .collect();
        let addrs: Vec<usize> = (0..32).map(|r| r * 16).collect();
        let res = ldmatrix(&smem, &addrs, 4);
        assert_eq!(res.phase_conflicts.len(), 4);
        assert_eq!(res.extra_replays(), 0);
        // Tile 3, row 0 starts at half 3*64.
        let (lo, _) = res.regs[0][3];
        assert_eq!(lo.to_f32(), (3 * 64) as f32);
    }

    #[test]
    fn reordered_rows_from_same_bank_conflict() {
        // Paper Figure 7 (b): rows 0 and 8 of a padded 64+8 stride tile.
        // Row 0 starts at bank 0; row 8 starts at bank (8*72*2/4)%32 =
        // (288)%32 = 0 -> conflict.
        let stride = 72usize; // halves
        let addr = |row: usize| row * stride * 2;
        assert!(conflict_ways(&[addr(0), addr(8)]) > 1);
        // Whereas rows 0 and 2 do not conflict.
        assert_eq!(conflict_ways(&[addr(0), addr(2)]), 1);
    }
}
