//! # sptc — functional Sparse Tensor Core emulation
//!
//! Bit-faithful software model of the NVIDIA Ampere Sparse Tensor Core
//! (SpTC) data path used by the Jigsaw SpMM kernel:
//!
//! * [`f16`] — software IEEE binary16 with round-to-nearest-even
//!   conversions (the operand precision Jigsaw targets),
//! * [`shape`] — the `mma`/`mma.sp` shape tables (paper Table 1),
//! * [`compress`] — 2:4 structured-sparsity checks and row compression
//!   (paper Figure 3),
//! * [`metadata`] — the E operand: 2-bit positional metadata packing,
//!   the F selector's lane mapping, and Jigsaw's interleaved layout that
//!   feeds two `mma.sp` ops from one `ldmatrix` (paper Figure 9),
//! * [`fragment`] — warp register-fragment layouts for every operand,
//! * [`mma`] — functional execution of `mma.m16n8k16` and
//!   `mma.sp.m16n8k32` through the fragments,
//! * [`ldmatrix`] — `ldmatrix.x{1,2,4}` semantics plus the 32-bank
//!   shared-memory conflict model (paper Figure 7).
//!
//! This crate is *functional*: it computes exactly what the hardware
//! computes and counts the architectural events (bank conflicts, phases)
//! that the companion `gpu-sim` crate turns into time.

#![warn(missing_docs)]

pub mod compress;
pub mod f16;
pub mod fragment;
pub mod ldmatrix;
pub mod metadata;
pub mod mma;
pub mod shape;

pub use compress::{
    compress_row_2_4, compress_tile_2_4, decompress_row_2_4, matrix_satisfies_2_4,
    row_satisfies_2_4, CompressedRow,
};
pub use f16::F16;
pub use fragment::{AccFragment, F16Fragment, FragKind};
pub use ldmatrix::{bank_of, conflict_ways, ldmatrix, LdmatrixResult, NUM_BANKS};
pub use metadata::{interleave_two_ops, pack_tile_metadata};
pub use mma::{
    dense_tile_reference, mma_m16n8k16, mma_sp_m16n8k16_tile, mma_sp_m16n8k32, mma_sp_tile,
};
pub use shape::{sparse_shapes_for, MmaShape, Precision, AMPERE_SPARSE_SHAPES};
