//! `mma.sp` metadata (operand E) encoding and distribution.
//!
//! For f16 `m16n8k32`, each of the 16 rows of the compressed A tile keeps
//! 16 elements (2 per group of 4), each annotated with a 2-bit in-group
//! position. One row's indices therefore pack into exactly one `u32`
//! (paper §3.4.3: "those column indices can be stored in 16 integers").
//!
//! Operand F selects which half of the warp supplies the metadata
//! registers: with `F = 0` the threads with `lane % 4 ∈ {0, 1}` provide
//! it, with `F = 1` the threads with `lane % 4 ∈ {2, 3}` do. Jigsaw's
//! *interleaved* layout (paper Figure 9) stores the metadata of two
//! consecutive `mma.sp` operations in 32 consecutive words so a single
//! `ldmatrix` feeds both, issuing the first with `F = 0` and the second
//! with `F = 1`.

/// Indices kept per compressed row of an f16 `m16n8k32` tile.
pub const INDICES_PER_ROW: usize = 16;
/// Rows in the tile.
pub const ROWS: usize = 16;
/// Warp size.
pub const WARP: usize = 32;

/// Packs one row's 16 two-bit positions (group order) into a `u32`.
/// Index `s` lands at bits `2s..2s+2`.
pub fn pack_row_metadata(indices: &[u8]) -> u32 {
    debug_assert_eq!(indices.len(), INDICES_PER_ROW);
    let mut word = 0u32;
    for (s, &idx) in indices.iter().enumerate() {
        debug_assert!(idx < 4);
        word |= u32::from(idx & 0b11) << (2 * s);
    }
    word
}

/// Unpacks a metadata word back into 16 two-bit positions.
pub fn unpack_row_metadata(word: u32) -> [u8; INDICES_PER_ROW] {
    let mut out = [0u8; INDICES_PER_ROW];
    for (s, slot) in out.iter_mut().enumerate() {
        *slot = ((word >> (2 * s)) & 0b11) as u8;
    }
    out
}

/// Packs a full 16-row tile's indices (`16 * 16` entries, row-major, as
/// produced by [`crate::compress::compress_tile_2_4`] on a 16×32 tile)
/// into the 16 metadata words, word `r` covering row `r`.
pub fn pack_tile_metadata(indices: &[u8]) -> [u32; ROWS] {
    debug_assert_eq!(indices.len(), ROWS * INDICES_PER_ROW);
    let mut words = [0u32; ROWS];
    for (r, chunk) in indices.chunks_exact(INDICES_PER_ROW).enumerate() {
        words[r] = pack_row_metadata(chunk);
    }
    words
}

/// Which row of metadata a lane supplies for a given sparsity selector,
/// or `None` when that lane supplies nothing for this operation.
///
/// Lane `4g + t`: with `F = 0`, `t = 0` supplies row `g` and `t = 1`
/// supplies row `g + 8`; with `F = 1` the same pattern shifts to
/// `t = 2` / `t = 3`.
pub fn metadata_row_for_lane(lane: usize, selector: u8) -> Option<usize> {
    debug_assert!(lane < WARP);
    debug_assert!(selector < 2);
    let g = lane / 4;
    let t = lane % 4;
    let base = usize::from(selector) * 2;
    if t == base {
        Some(g)
    } else if t == base + 1 {
        Some(g + 8)
    } else {
        None
    }
}

/// Scatters the 16 per-row metadata words into per-lane registers for an
/// operation issued with the given selector. Lanes that supply nothing
/// receive 0 (on hardware their register content is ignored).
pub fn distribute_metadata(words: &[u32; ROWS], selector: u8) -> [u32; WARP] {
    let mut regs = [0u32; WARP];
    for (lane, reg) in regs.iter_mut().enumerate() {
        if let Some(row) = metadata_row_for_lane(lane, selector) {
            *reg = words[row];
        }
    }
    regs
}

/// Gathers the 16 metadata words from per-lane registers (inverse of
/// [`distribute_metadata`]); this is what the hardware's selector does.
pub fn collect_metadata(regs: &[u32; WARP], selector: u8) -> [u32; ROWS] {
    let mut words = [0u32; ROWS];
    for (lane, &reg) in regs.iter().enumerate() {
        if let Some(row) = metadata_row_for_lane(lane, selector) {
            words[row] = reg;
        }
    }
    words
}

/// Builds the *interleaved* storage layout of paper Figure 9: the 32
/// words covering two consecutive `mma.sp` operations, ordered so that
/// word `i` is exactly the register lane `i` needs (op 0 via `F = 0` on
/// lanes with `lane % 4 ∈ {0,1}`, op 1 via `F = 1` on the others). One
/// 128-byte `ldmatrix` then loads one word per lane with no branching
/// and no wasted loads.
pub fn interleave_two_ops(op0: &[u32; ROWS], op1: &[u32; ROWS]) -> [u32; WARP] {
    let mut out = [0u32; WARP];
    for (lane, slot) in out.iter_mut().enumerate() {
        if let Some(row) = metadata_row_for_lane(lane, 0) {
            *slot = op0[row];
        } else if let Some(row) = metadata_row_for_lane(lane, 1) {
            *slot = op1[row];
        } else {
            unreachable!("every lane serves exactly one of the two selectors");
        }
    }
    out
}

/// Splits an interleaved 32-word block back into the two operations'
/// metadata words (inverse of [`interleave_two_ops`]).
pub fn deinterleave_two_ops(block: &[u32; WARP]) -> ([u32; ROWS], [u32; ROWS]) {
    (collect_metadata(block, 0), collect_metadata(block, 1))
}

/// The naive (non-interleaved) layout the paper's v2 kernel uses: 16
/// words per op stored contiguously. Lanes with `lane % 4 ∈ {0, 1}` each
/// branch to load one word; the other 16 lanes idle (warp divergence) or
/// load dead data (wasted throughput). Returned as the per-lane load
/// slot each lane touches, `None` for idle lanes — the kernel models use
/// this to count instructions and divergence.
pub fn naive_layout_lane_slots(selector: u8) -> [Option<usize>; WARP] {
    let mut slots = [None; WARP];
    for (lane, slot) in slots.iter_mut().enumerate() {
        *slot = metadata_row_for_lane(lane, selector);
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let idx: Vec<u8> = (0..16).map(|i| (i % 4) as u8).collect();
        let word = pack_row_metadata(&idx);
        assert_eq!(unpack_row_metadata(word).to_vec(), idx);
    }

    #[test]
    fn figure3_first_row_metadata() {
        // Paper Figure 3: first row metadata (0,3) and (1,2).
        let mut idx = vec![0u8; 16];
        idx[0] = 0;
        idx[1] = 3;
        idx[2] = 1;
        idx[3] = 2;
        let word = pack_row_metadata(&idx);
        assert_eq!(word & 0xFF, 0b10_01_11_00);
    }

    #[test]
    fn selector_lane_coverage_is_a_partition() {
        // Every metadata row is provided by exactly one lane per selector,
        // and the two selectors use disjoint lane sets.
        for selector in 0..2u8 {
            let mut seen = [false; ROWS];
            for lane in 0..WARP {
                if let Some(r) = metadata_row_for_lane(lane, selector) {
                    assert!(!seen[r], "row {r} provided twice");
                    seen[r] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
        for lane in 0..WARP {
            let f0 = metadata_row_for_lane(lane, 0).is_some();
            let f1 = metadata_row_for_lane(lane, 1).is_some();
            assert!(f0 ^ f1, "lane {lane} must serve exactly one selector");
        }
    }

    #[test]
    fn paper_f0_lane_set() {
        // Paper §3.4.3: with F=0 only threads 0,1,4,5,...,28,29 load.
        let expected: Vec<usize> = (0..8).flat_map(|g| [4 * g, 4 * g + 1]).collect();
        let actual: Vec<usize> = (0..WARP)
            .filter(|&l| metadata_row_for_lane(l, 0).is_some())
            .collect();
        assert_eq!(actual, expected);
    }

    #[test]
    fn distribute_collect_roundtrip() {
        let words: [u32; ROWS] = std::array::from_fn(|i| (i as u32) * 0x0101_0101);
        for selector in 0..2u8 {
            let regs = distribute_metadata(&words, selector);
            assert_eq!(collect_metadata(&regs, selector), words);
        }
    }

    #[test]
    fn interleave_roundtrip() {
        let op0: [u32; ROWS] = std::array::from_fn(|i| i as u32);
        let op1: [u32; ROWS] = std::array::from_fn(|i| 100 + i as u32);
        let block = interleave_two_ops(&op0, &op1);
        let (b0, b1) = deinterleave_two_ops(&block);
        assert_eq!(b0, op0);
        assert_eq!(b1, op1);
    }

    #[test]
    fn interleaved_block_serves_every_lane() {
        // The whole point of the layout: no lane is idle.
        let op0 = [1u32; ROWS];
        let op1 = [2u32; ROWS];
        let block = interleave_two_ops(&op0, &op1);
        assert!(block.iter().all(|&w| w == 1 || w == 2));
        assert_eq!(block.iter().filter(|&&w| w == 1).count(), 16);
    }

    #[test]
    fn naive_layout_half_the_lanes_idle() {
        let slots = naive_layout_lane_slots(0);
        assert_eq!(slots.iter().filter(|s| s.is_some()).count(), 16);
    }
}
