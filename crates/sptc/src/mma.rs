//! Functional execution of tensor-core matrix-multiply-accumulate ops.
//!
//! [`mma_sp_m16n8k32`] implements the sparse instruction the Jigsaw kernel
//! is built on: `D = A × B + C` where A is the *compressed* 16×16 half of
//! a 2:4-sparse 16×32 tile and the metadata operand steers a selector
//! that picks the matching rows of B (paper Figure 2/3). Accumulation is
//! f32, matching HMMA.
//!
//! The executors consume *fragments* (per-lane registers), not plain
//! tiles, so the whole data path — compression, metadata packing,
//! fragment distribution, selector — is exercised exactly as a real warp
//! would see it. Tile-level wrappers are provided for convenience.

use crate::compress::{compress_tile_2_4, GROUP, KEPT_PER_GROUP};
use crate::f16::F16;
use crate::fragment::{AccFragment, F16Fragment, FragKind, WARP};
use crate::metadata::{pack_tile_metadata, unpack_row_metadata, ROWS};

/// Dense `mma.m16n8k16`: `D[16×8] = A[16×16] × B[16×8] + C`, f32 accum.
pub fn mma_m16n8k16(a: &F16Fragment, b: &F16Fragment, c: &AccFragment) -> AccFragment {
    assert_eq!(a.kind, FragKind::A16x16);
    assert_eq!(b.kind, FragKind::B16x8);
    let a_tile = a.store();
    let b_tile = b.store();
    let mut d = c.clone();
    for lane in 0..WARP {
        for e in 0..4 {
            let (r, col) = FragKind::Acc16x8.coord(lane, e);
            let mut acc = d.regs[lane][e];
            for k in 0..16 {
                acc += a_tile[r * 16 + k].to_f32() * b_tile[k * 8 + col].to_f32();
            }
            d.regs[lane][e] = acc;
        }
    }
    d
}

/// Sparse `mma.sp.m16n8k32`: `D[16×8] = A[16×32] × B[32×8] + C` where
/// `a` holds the compressed 16×16 values, `meta` the per-lane metadata
/// registers, and `selector` the F operand choosing which lanes' metadata
/// registers are live.
pub fn mma_sp_m16n8k32(
    a: &F16Fragment,
    b: &F16Fragment,
    c: &AccFragment,
    meta: &[u32; WARP],
    selector: u8,
) -> AccFragment {
    assert_eq!(a.kind, FragKind::A16x16, "A must be the compressed 16x16");
    assert_eq!(b.kind, FragKind::B32x8);
    let words = crate::metadata::collect_metadata(meta, selector);
    mma_sp_with_words(a, b, c, &words)
}

/// Core of the sparse op once the metadata words are gathered: for each
/// output element, walk the 8 groups of the row; kept element `j` of
/// group `g` multiplies `B[4g + idx][col]` — the hardware selector.
fn mma_sp_with_words(
    a: &F16Fragment,
    b: &F16Fragment,
    c: &AccFragment,
    words: &[u32; ROWS],
) -> AccFragment {
    let a_tile = a.store(); // compressed 16x16
    let b_tile = b.store(); // 32x8
    let mut d = c.clone();
    let groups = 32 / GROUP; // 8 groups of 4 along K
    for lane in 0..WARP {
        for e in 0..4 {
            let (r, col) = FragKind::Acc16x8.coord(lane, e);
            let indices = unpack_row_metadata(words[r]);
            let mut acc = d.regs[lane][e];
            for g in 0..groups {
                for j in 0..KEPT_PER_GROUP {
                    let slot = g * KEPT_PER_GROUP + j;
                    let val = a_tile[r * 16 + slot];
                    let k = g * GROUP + indices[slot] as usize;
                    acc += val.to_f32() * b_tile[k * 8 + col].to_f32();
                }
            }
            d.regs[lane][e] = acc;
        }
    }
    d
}

/// Tile-level convenience: multiplies an *uncompressed* 2:4-satisfying
/// 16×32 tile by a 32×8 tile, going through compression, metadata
/// packing, fragment distribution and the sparse executor. Returns the
/// 16×8 f32 product (row-major) or `None` if the tile violates 2:4.
pub fn mma_sp_tile(a_tile: &[F16], b_tile: &[F16], c_tile: &[f32]) -> Option<Vec<f32>> {
    assert_eq!(a_tile.len(), 16 * 32);
    assert_eq!(b_tile.len(), 32 * 8);
    assert_eq!(c_tile.len(), 16 * 8);
    let (vals, idx) = compress_tile_2_4(a_tile, 32)?;
    let words = pack_tile_metadata(&idx);
    let a_frag = F16Fragment::load(FragKind::A16x16, &vals);
    let b_frag = F16Fragment::load(FragKind::B32x8, b_tile);
    let c_frag = AccFragment::load(c_tile);
    let meta = crate::metadata::distribute_metadata(&words, 0);
    let d = mma_sp_m16n8k32(&a_frag, &b_frag, &c_frag, &meta, 0);
    Some(d.store())
}

/// Sparse `mma.sp.m16n8k16` — the *rejected* shape (paper §2.2): K=16
/// uncompressed, 8 kept per row. The paper chooses `m16n8k32` because
/// this shape halves useful work at the same issue interval; the
/// functional semantics are provided for completeness and for Table 1
/// round-trip tests. Tile-level: `a_tile` is the uncompressed
/// 2:4-satisfying 16×16 tile, `b_tile` 16×8, `c_tile` 16×8 f32.
pub fn mma_sp_m16n8k16_tile(a_tile: &[F16], b_tile: &[F16], c_tile: &[f32]) -> Option<Vec<f32>> {
    assert_eq!(a_tile.len(), 16 * 16);
    assert_eq!(b_tile.len(), 16 * 8);
    assert_eq!(c_tile.len(), 16 * 8);
    let (vals, idx) = compress_tile_2_4(a_tile, 16)?;
    // K=16 keeps 8 per row: 4 groups x 2. Walk the selector directly.
    let mut d = c_tile.to_vec();
    for r in 0..16 {
        for col in 0..8 {
            let mut acc = d[r * 8 + col];
            for g in 0..4 {
                for j in 0..KEPT_PER_GROUP {
                    let slot = g * KEPT_PER_GROUP + j;
                    let v = vals[r * 8 + slot];
                    let k = g * GROUP + idx[r * 8 + slot] as usize;
                    acc += v.to_f32() * b_tile[k * 8 + col].to_f32();
                }
            }
            d[r * 8 + col] = acc;
        }
    }
    Some(d)
}

/// Tile-level dense reference: `D[16×8] = A[16×K] × B[K×8] + C` with f32
/// accumulation in ascending-k order — the ground truth the fragment
/// executors are tested against.
pub fn dense_tile_reference(a: &[F16], b: &[F16], c: &[f32], k: usize) -> Vec<f32> {
    assert_eq!(a.len(), 16 * k);
    assert_eq!(b.len(), k * 8);
    assert_eq!(c.len(), 16 * 8);
    let mut d = c.to_vec();
    for r in 0..16 {
        for col in 0..8 {
            let mut acc = d[r * 8 + col];
            for kk in 0..k {
                acc += a[r * k + kk].to_f32() * b[kk * 8 + col].to_f32();
            }
            d[r * 8 + col] = acc;
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compress::matrix_satisfies_2_4;
    use rand::prelude::*;

    fn h(v: f32) -> F16 {
        F16::from_f32(v)
    }

    /// Random 2:4 tile with small-integer values (exact in f32, so
    /// accumulation-order differences cannot cause mismatches).
    fn random_2_4_tile(rng: &mut StdRng) -> Vec<F16> {
        let mut tile = vec![F16::ZERO; 16 * 32];
        for r in 0..16 {
            for g in 0..8 {
                // Choose up to 2 positions in the group.
                let n = rng.gen_range(0..=2);
                let mut positions: Vec<usize> = (0..4).collect();
                positions.shuffle(rng);
                for &p in positions.iter().take(n) {
                    tile[r * 32 + g * 4 + p] = h(rng.gen_range(-8..=8) as f32);
                }
            }
        }
        tile
    }

    fn random_dense_tile(rng: &mut StdRng, elems: usize) -> Vec<F16> {
        (0..elems)
            .map(|_| h(rng.gen_range(-4..=4) as f32))
            .collect()
    }

    #[test]
    fn dense_mma_matches_reference() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..8 {
            let a = random_dense_tile(&mut rng, 16 * 16);
            let b = random_dense_tile(&mut rng, 16 * 8);
            let c: Vec<f32> = (0..128).map(|_| rng.gen_range(-4..=4) as f32).collect();
            let d = mma_m16n8k16(
                &F16Fragment::load(FragKind::A16x16, &a),
                &F16Fragment::load(FragKind::B16x8, &b),
                &AccFragment::load(&c),
            );
            assert_eq!(d.store(), dense_tile_reference(&a, &b, &c, 16));
        }
    }

    #[test]
    fn sparse_mma_matches_dense_reference() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..16 {
            let a = random_2_4_tile(&mut rng);
            assert!(matrix_satisfies_2_4(&a, 32));
            let b = random_dense_tile(&mut rng, 32 * 8);
            let c: Vec<f32> = (0..128).map(|_| rng.gen_range(-4..=4) as f32).collect();
            let d = mma_sp_tile(&a, &b, &c).expect("tile is 2:4");
            assert_eq!(d, dense_tile_reference(&a, &b, &c, 32));
        }
    }

    #[test]
    fn sparse_mma_selector_f1_equivalent() {
        // The same computation must come out regardless of which warp half
        // carries the metadata.
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_2_4_tile(&mut rng);
        let b = random_dense_tile(&mut rng, 32 * 8);
        let (vals, idx) = compress_tile_2_4(&a, 32).unwrap();
        let words = pack_tile_metadata(&idx);
        let a_frag = F16Fragment::load(FragKind::A16x16, &vals);
        let b_frag = F16Fragment::load(FragKind::B32x8, &b);
        let c = AccFragment::zero();
        let d0 = mma_sp_m16n8k32(
            &a_frag,
            &b_frag,
            &c,
            &crate::metadata::distribute_metadata(&words, 0),
            0,
        );
        let d1 = mma_sp_m16n8k32(
            &a_frag,
            &b_frag,
            &c,
            &crate::metadata::distribute_metadata(&words, 1),
            1,
        );
        assert_eq!(d0.store(), d1.store());
    }

    #[test]
    fn sparse_mma_skips_zeros_exactly() {
        // A tile whose only nonzero is at (5, 17) must produce row 5 =
        // value * B[17][*] and zeros elsewhere.
        let mut a = vec![F16::ZERO; 16 * 32];
        a[5 * 32 + 17] = h(3.0);
        let b: Vec<F16> = (0..32 * 8).map(|i| h((i % 8) as f32)).collect();
        let c = vec![0.0f32; 128];
        let d = mma_sp_tile(&a, &b, &c).unwrap();
        for r in 0..16 {
            for col in 0..8 {
                let expected = if r == 5 {
                    3.0 * b[17 * 8 + col].to_f32()
                } else {
                    0.0
                };
                assert_eq!(d[r * 8 + col], expected, "({r},{col})");
            }
        }
    }

    #[test]
    fn sparse_k16_matches_dense_reference() {
        // The rejected m16n8k16 shape computes the same math over K=16.
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..8 {
            let mut a = vec![F16::ZERO; 16 * 16];
            for r in 0..16 {
                for g in 0..4 {
                    for _ in 0..2 {
                        let p = rng.gen_range(0..4usize);
                        a[r * 16 + g * 4 + p] = h(rng.gen_range(-4..=4) as f32);
                    }
                }
            }
            let b = random_dense_tile(&mut rng, 16 * 8);
            let c: Vec<f32> = (0..128).map(|_| rng.gen_range(-4..=4) as f32).collect();
            let d = mma_sp_m16n8k16_tile(&a, &b, &c).unwrap();
            assert_eq!(d, dense_tile_reference(&a, &b, &c, 16));
        }
    }

    #[test]
    fn sparse_k16_does_half_the_work_of_k32() {
        // Table 1 sanity: same instruction slot, half the K coverage —
        // the reason the paper picks m16n8k32.
        use crate::shape::MmaShape;
        assert_eq!(MmaShape::M16N8K32.flops(), 2 * MmaShape::M16N8K16.flops());
    }

    #[test]
    fn accumulator_is_added() {
        let a = vec![F16::ZERO; 16 * 32];
        let b = vec![F16::ONE; 32 * 8];
        let c: Vec<f32> = (0..128).map(|i| i as f32).collect();
        let d = mma_sp_tile(&a, &b, &c).unwrap();
        assert_eq!(d, c);
    }

    #[test]
    fn rejects_non_2_4_tile() {
        let mut a = vec![F16::ZERO; 16 * 32];
        a[0] = h(1.0);
        a[1] = h(1.0);
        a[2] = h(1.0);
        let b = vec![F16::ONE; 32 * 8];
        assert!(mma_sp_tile(&a, &b, &vec![0.0; 128]).is_none());
    }
}
