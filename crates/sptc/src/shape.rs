//! Sparse Tensor Core instruction shapes (paper Table 1).
//!
//! The Ampere SpTC exposes `mma.sp` at fixed `MxNxK` shapes per element
//! precision. Jigsaw uses `f16` `m16n8k32` because, per the
//! microbenchmarks of Sun et al. (TPDS'23) cited by the paper, it matches
//! the latency/throughput of the dense `m16n8k16` HMMA while covering
//! twice the K extent.

use std::fmt;

/// Operand element precision of a tensor-core instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub enum Precision {
    /// TensorFloat-32 (19-bit significand path).
    Tf32,
    /// IEEE binary16.
    F16,
    /// bfloat16.
    Bf16,
    /// 8-bit integers (signed or unsigned).
    Int8,
    /// 4-bit integers (signed or unsigned).
    Int4,
}

/// An `MxNxK` tensor-core tile shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct MmaShape {
    /// Rows of the A/C tiles.
    pub m: usize,
    /// Columns of the B/C tiles.
    pub n: usize,
    /// Reduction extent (columns of A, rows of B) *before* 2:4 compression.
    pub k: usize,
}

impl MmaShape {
    /// The shape Jigsaw uses: sparse `m16n8k32`, f16.
    pub const M16N8K32: MmaShape = MmaShape { m: 16, n: 8, k: 32 };
    /// The smaller f16 sparse shape (lower throughput; not used by Jigsaw).
    pub const M16N8K16: MmaShape = MmaShape { m: 16, n: 8, k: 16 };
    /// Dense HMMA shape used by CLASP (`mma.m8n8k16` heritage).
    pub const M8N8K16: MmaShape = MmaShape { m: 8, n: 8, k: 16 };

    /// Floating-point operations performed by one dense instruction of
    /// this shape (multiply + add counted separately).
    pub fn flops(&self) -> usize {
        2 * self.m * self.n * self.k
    }

    /// Elements of A consumed per instruction (uncompressed).
    pub fn a_elems(&self) -> usize {
        self.m * self.k
    }

    /// Elements of B consumed per instruction.
    pub fn b_elems(&self) -> usize {
        self.k * self.n
    }
}

impl fmt::Display for MmaShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}n{}k{}", self.m, self.n, self.k)
    }
}

/// One row of paper Table 1: the sparse shapes a precision supports.
#[derive(Clone, Copy, Debug)]
pub struct SparseSupport {
    /// Element precision.
    pub precision: Precision,
    /// The two `mma.sp` shapes Ampere offers for that precision.
    pub shapes: [MmaShape; 2],
}

/// Paper Table 1: Ampere `mma.sp` support matrix.
pub const AMPERE_SPARSE_SHAPES: [SparseSupport; 4] = [
    SparseSupport {
        precision: Precision::Tf32,
        shapes: [
            MmaShape { m: 16, n: 8, k: 16 },
            MmaShape { m: 16, n: 8, k: 8 },
        ],
    },
    SparseSupport {
        precision: Precision::F16,
        shapes: [
            MmaShape { m: 16, n: 8, k: 16 },
            MmaShape { m: 16, n: 8, k: 32 },
        ],
    },
    SparseSupport {
        precision: Precision::Int8,
        shapes: [
            MmaShape { m: 16, n: 8, k: 32 },
            MmaShape { m: 16, n: 8, k: 64 },
        ],
    },
    SparseSupport {
        precision: Precision::Int4,
        shapes: [
            MmaShape { m: 16, n: 8, k: 64 },
            MmaShape {
                m: 16,
                n: 8,
                k: 128,
            },
        ],
    },
];

/// Looks up the sparse shapes supported for `precision` (Table 1; `Bf16`
/// shares the `F16` row).
pub fn sparse_shapes_for(precision: Precision) -> Option<[MmaShape; 2]> {
    let lookup = match precision {
        Precision::Bf16 => Precision::F16,
        p => p,
    };
    AMPERE_SPARSE_SHAPES
        .iter()
        .find(|s| s.precision == lookup)
        .map(|s| s.shapes)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_f16_row() {
        let shapes = sparse_shapes_for(Precision::F16).unwrap();
        assert!(shapes.contains(&MmaShape::M16N8K16));
        assert!(shapes.contains(&MmaShape::M16N8K32));
    }

    #[test]
    fn bf16_shares_f16_row() {
        assert_eq!(
            sparse_shapes_for(Precision::Bf16),
            sparse_shapes_for(Precision::F16)
        );
    }

    #[test]
    fn int4_supports_k128() {
        let shapes = sparse_shapes_for(Precision::Int4).unwrap();
        assert!(shapes.iter().any(|s| s.k == 128));
    }

    #[test]
    fn flop_counts() {
        assert_eq!(MmaShape::M16N8K32.flops(), 8192);
        assert_eq!(MmaShape::M16N8K16.flops(), 4096);
        assert_eq!(MmaShape::M8N8K16.flops(), 2048);
    }
}
