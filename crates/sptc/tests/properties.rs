//! Property-based tests for the SpTC emulation invariants.

use proptest::prelude::*;
use sptc::compress::{compress_row_2_4, decompress_row_2_4, row_satisfies_2_4};
use sptc::f16::{pack_f16x2, unpack_f16x2, F16};
use sptc::fragment::{F16Fragment, FragKind};
use sptc::ldmatrix::conflict_ways;
use sptc::metadata::{
    deinterleave_two_ops, interleave_two_ops, pack_row_metadata, unpack_row_metadata,
};
use sptc::mma::{dense_tile_reference, mma_sp_tile};

/// Strategy: a 2:4-satisfying row of `groups` groups with small-integer
/// values (exact under any f32 accumulation order).
fn row_2_4(groups: usize) -> impl Strategy<Value = Vec<F16>> {
    proptest::collection::vec(
        (
            proptest::sample::subsequence(vec![0usize, 1, 2, 3], 0..=2),
            proptest::collection::vec(-8i32..=8, 2),
        ),
        groups,
    )
    .prop_map(|groups| {
        let mut row = Vec::with_capacity(groups.len() * 4);
        for (positions, vals) in groups {
            let mut g = [F16::ZERO; 4];
            for (slot, &p) in positions.iter().enumerate() {
                g[p] = F16::from_f32(vals[slot] as f32);
            }
            row.extend_from_slice(&g);
        }
        row
    })
}

proptest! {
    #[test]
    fn f16_f32_roundtrip_is_identity_on_f16_values(bits in any::<u16>()) {
        let h = F16::from_bits(bits);
        let back = F16::from_f32(h.to_f32());
        if h.is_nan() {
            prop_assert!(back.is_nan());
        } else {
            prop_assert_eq!(back.to_bits(), h.to_bits());
        }
    }

    #[test]
    fn f16_conversion_is_monotone(a in -65504.0f32..65504.0, b in -65504.0f32..65504.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(F16::from_f32(lo).to_f32() <= F16::from_f32(hi).to_f32());
    }

    #[test]
    fn pack_f16x2_roundtrips(a in any::<u16>(), b in any::<u16>()) {
        let (x, y) = unpack_f16x2(pack_f16x2(F16::from_bits(a), F16::from_bits(b)));
        prop_assert_eq!(x.to_bits(), a);
        prop_assert_eq!(y.to_bits(), b);
    }

    #[test]
    fn compress_decompress_roundtrips(row in row_2_4(8)) {
        prop_assert!(row_satisfies_2_4(&row));
        let c = compress_row_2_4(&row).unwrap();
        prop_assert_eq!(decompress_row_2_4(&c, row.len()), row);
    }

    #[test]
    fn compressed_row_has_half_length(row in row_2_4(4)) {
        let c = compress_row_2_4(&row).unwrap();
        prop_assert_eq!(c.values.len(), row.len() / 2);
        prop_assert_eq!(c.indices.len(), row.len() / 2);
        // Indices are strictly increasing within each group.
        for pair in c.indices.chunks_exact(2) {
            prop_assert!(pair[0] < pair[1] || pair[0] != pair[1]);
        }
    }

    #[test]
    fn metadata_words_roundtrip(indices in proptest::collection::vec(0u8..4, 16)) {
        let word = pack_row_metadata(&indices);
        prop_assert_eq!(unpack_row_metadata(word).to_vec(), indices);
    }

    #[test]
    fn interleave_is_a_bijection(
        a in proptest::collection::vec(any::<u32>(), 16),
        b in proptest::collection::vec(any::<u32>(), 16),
    ) {
        let op0: [u32; 16] = a.try_into().unwrap();
        let op1: [u32; 16] = b.try_into().unwrap();
        let block = interleave_two_ops(&op0, &op1);
        let (r0, r1) = deinterleave_two_ops(&block);
        prop_assert_eq!(r0, op0);
        prop_assert_eq!(r1, op1);
    }

    #[test]
    fn fragments_roundtrip_any_tile(seed in any::<u64>()) {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(seed);
        for kind in [FragKind::A16x16, FragKind::B16x8, FragKind::B32x8] {
            let (r, c) = kind.dims();
            let tile: Vec<F16> = (0..r * c)
                .map(|_| F16::from_f32(rng.gen_range(-100..100) as f32))
                .collect();
            let frag = F16Fragment::load(kind, &tile);
            prop_assert_eq!(frag.store(), tile);
        }
    }

    #[test]
    fn sparse_mma_equals_dense_reference(rows in proptest::collection::vec(row_2_4(8), 16)) {
        let a: Vec<F16> = rows.into_iter().flatten().collect();
        let b: Vec<F16> = (0..32 * 8).map(|i| F16::from_f32(((i % 7) as f32) - 3.0)).collect();
        let c = vec![0.0f32; 128];
        let d = mma_sp_tile(&a, &b, &c).expect("2:4 by construction");
        prop_assert_eq!(d, dense_tile_reference(&a, &b, &c, 32));
    }

    #[test]
    fn conflict_ways_bounds(addrs in proptest::collection::vec((0usize..1024).prop_map(|a| a * 2), 1..8)) {
        let ways = conflict_ways(&addrs);
        prop_assert!(ways >= 1);
        prop_assert!(ways <= addrs.len() * 4); // each row touches 4 banks
    }
}
