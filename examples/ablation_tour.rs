//! Ablation tour: walk the kernel versions v0 → v4 on one matrix and
//! watch each optimization act through the simulator's Nsight-style
//! counters — the narrative of the paper's §4.4.
//!
//! ```text
//! cargo run --release --example ablation_tour
//! ```

use baselines::{CublasGemm, SpmmKernel};
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

fn main() {
    let spec = GpuSpec::a100();
    let (m, k, n) = (512usize, 512usize, 512usize);
    let a = VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity: 0.95,
        v: 8,
        dist: ValueDist::Uniform,
        seed: 2024,
    }
    .generate();
    let cublas = CublasGemm::plan(&a).simulate(n, &spec).duration_cycles;
    println!(
        "workload: {m}x{k} @ 95% sparsity (v=8), N={n}; cuBLAS reference {cublas:.0} cycles\n"
    );

    let versions: [(&str, JigsawConfig, &str); 4] = [
        (
            "v0",
            JigsawConfig::v0(),
            "baseline: async copies, but unpadded B tile in shared memory",
        ),
        (
            "v1",
            JigsawConfig::v1(),
            "+ bank-conflict elimination (padding + conflict-aware reorder)",
        ),
        (
            "v2",
            JigsawConfig::v2(),
            "+ deepened pipeline (col_idx prefetched two steps ahead)",
        ),
        (
            "v3",
            JigsawConfig::v3(),
            "+ interleaved metadata (one ldmatrix feeds two mma.sp)",
        ),
    ];

    for (name, config, what) in versions {
        let spmm = JigsawSpmm::plan(&a, config).expect("preset tiling is valid");
        let s = spmm.simulate(n, &spec);
        println!("{name}: {what}");
        println!(
            "    {:.0} cycles ({:.2}x vs cuBLAS) | bank conflicts {} | long sb/instr {:.2} | short sb/instr {:.2} | smem instr {}",
            s.duration_cycles,
            cublas / s.duration_cycles,
            s.totals.smem_bank_conflicts,
            s.long_scoreboard_per_instr,
            s.short_scoreboard_per_instr,
            s.totals.smem_instructions
        );
    }

    let (spmm, tune) = JigsawSpmm::plan_tuned(&a, n, &spec).expect("candidates non-empty");
    let s = spmm.simulate(n, &spec);
    println!(
        "v4: + BLOCK_TILE tuning (candidates {:?})",
        tune.candidate_cycles
    );
    println!(
        "    {:.0} cycles ({:.2}x vs cuBLAS) with BLOCK_TILE={}",
        s.duration_cycles,
        cublas / s.duration_cycles,
        tune.block_tile_m
    );
}
