//! Hybrid frontier (the paper's §4.7 extension, implemented in
//! `jigsaw_core::hybrid`): sweep sparsity from 40% to 98% and watch the
//! workload migrate between the three execution routes — dense tensor
//! cores, SpTC, CUDA cores — while staying competitive with both the
//! pure-SpTC Jigsaw and dense cuBLAS at every point.
//!
//! ```text
//! cargo run --release --example hybrid_frontier
//! ```

use baselines::{CublasGemm, SpmmKernel};
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{HybridConfig, HybridPlan, JigsawConfig, JigsawSpmm};

fn main() {
    let spec = GpuSpec::a100();
    let (m, k, n) = (1024usize, 1024usize, 512usize);
    println!("hybrid execution frontier on {m}x{k}, N={n}, v=4\n");
    println!(
        "{:>9} {:>22} {:>12} {:>12} {:>12} {:>10}",
        "sparsity", "routes (sp/dn/cu)", "cuBLAS(us)", "jigsaw(us)", "hybrid(us)", "best"
    );

    for &sparsity in &[0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 0.95, 0.98] {
        let a = VectorSparseSpec {
            rows: m,
            cols: k,
            sparsity,
            v: 4,
            dist: ValueDist::Uniform,
            seed: (sparsity * 100.0) as u64,
        }
        .generate();

        let cublas = CublasGemm::plan(&a).simulate(n, &spec).duration_us;
        let base = JigsawSpmm::plan(&a, JigsawConfig::v4(32))
            .expect("valid tiling")
            .simulate(n, &spec)
            .duration_us;
        let plan = HybridPlan::build(&a, HybridConfig::default());
        let routes = plan.stats();
        let hybrid = plan.simulate(n, &spec).duration_us;

        let best = if hybrid <= base && hybrid <= cublas {
            "hybrid"
        } else if base <= cublas {
            "jigsaw"
        } else {
            "cuBLAS"
        };
        println!(
            "{:>8.0}% {:>8}/{:<5}/{:<6} {:>12.1} {:>12.1} {:>12.1} {:>10}",
            sparsity * 100.0,
            routes.sparse_windows,
            routes.dense_windows,
            routes.cuda_windows,
            cublas,
            base,
            hybrid,
            best
        );
    }

    println!(
        "\nThe dense route absorbs the windows the 2:4 reorder cannot fix\n\
         (common below ~80% sparsity), the SpTC route takes over as\n\
         sparsity rises, and the CUDA route mops up nearly-empty strips —\n\
         the division of labor §4.7 proposes."
    );
}
