//! Kernel timeline: render a per-warp Gantt of one Jigsaw thread block
//! for two ablation versions and watch the pipeline overlap change —
//! the simulator's answer to staring at Nsight timelines.
//!
//! ```text
//! cargo run --release --example kernel_timeline
//! ```

use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::{record_timeline, EngineConfig, GpuSpec};
use jigsaw_core::{build_launch, JigsawConfig, JigsawSpmm};

fn main() {
    let a = VectorSparseSpec {
        rows: 64,
        cols: 512,
        sparsity: 0.9,
        v: 8,
        dist: ValueDist::Uniform,
        seed: 77,
    }
    .generate();
    let cfg = EngineConfig {
        spec: GpuSpec::a100(),
        resident_blocks: 1,
    };

    for (label, config) in [
        (
            "v1 (shallow pipeline: B load stalls on col_idx)",
            JigsawConfig::v1(),
        ),
        (
            "v3 (deep pipeline + interleaved metadata)",
            JigsawConfig::v3(),
        ),
    ] {
        let spmm = JigsawSpmm::plan(&a, config).expect("preset tiling is valid");
        let launch = build_launch(&spmm.format, 64, &config);
        let block = &launch.blocks[0];
        let timeline = record_timeline(block, &cfg);
        println!("=== {label} ===");
        print!("{}", timeline.render(block, 100));
        println!(
            "issue utilization {:.0}%, long-scoreboard stalls {} cycles\n",
            100.0 * timeline.issue_utilization(),
            timeline.stats.long_scoreboard_cycles
        );
    }
}
