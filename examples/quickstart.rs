//! Quickstart: plan a vector-sparse matrix, run the SpMM, verify
//! against a dense reference, and read the simulated kernel report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

fn main() {
    // A 1024x1024 weight matrix, 95% sparse, pruned in vertical vectors
    // of width 4 — the kind of matrix 1-D block pruning produces.
    let a = VectorSparseSpec::new(1024, 1024, 0.95, 4, 42).generate();
    println!(
        "A: {}x{}, sparsity {:.1}%, {} nonzeros",
        a.rows,
        a.cols,
        100.0 * a.sparsity(),
        a.nnz()
    );

    // One-time preprocessing: multi-granularity sparsity reorder +
    // reorder-aware compression (amortized over inference runs).
    // Planning validates the config and input and returns a typed
    // error instead of panicking on malformed tilings.
    let config = JigsawConfig::builder()
        .block_tile(32, 64)
        .bank_conflict_elimination(true)
        .deep_pipeline(true)
        .metadata_interleave(true)
        .build()
        .expect("tiling is MMA/warp aligned");
    let spmm = match JigsawSpmm::plan(&a, config) {
        Ok(planned) => planned,
        Err(e) => {
            eprintln!("planning failed: {e}");
            return;
        }
    };
    let stats = &spmm.reorder_stats;
    println!(
        "reorder: success={}, zero columns skipped={}, computes {:.1}% of dense K",
        stats.success,
        stats.zero_cols_skipped,
        100.0 * stats.avg_k_fraction
    );

    // Multiply against an activation matrix B.
    let b = dense_rhs(1024, 256, ValueDist::Uniform, 7);
    let spec = GpuSpec::a100();
    let run = spmm.run(&b, &spec);

    // Verify against the scalar reference.
    let reference = a.matmul_reference(&b);
    let err = jigsaw_core::max_relative_error(&run.c, &reference);
    println!("max relative error vs dense reference: {err:.2e}");
    assert!(err < 1e-3, "numerical mismatch");

    // The simulated A100 execution report (paper's Duration metric).
    println!(
        "simulated kernel: {:.0} cycles ({:.1} us), {} blocks, {} mma.sp, {} bank conflicts",
        run.stats.duration_cycles,
        run.stats.duration_us,
        run.stats.blocks,
        run.stats.totals.mma_instructions,
        run.stats.totals.smem_bank_conflicts
    );
}
