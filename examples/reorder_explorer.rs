//! Reorder explorer: visualize what the multi-granularity sparsity
//! reorder does to a small matrix — zero-column extraction, Algorithm
//! 1 tile permutations, evictions — and sweep the success rate across
//! sparsity levels.
//!
//! ```text
//! cargo run --release --example reorder_explorer
//! ```

use dlmc::{ValueDist, VectorSparseSpec};
use jigsaw_core::reorder::{ReorderPlan, PAD};
use jigsaw_core::JigsawConfig;

fn main() {
    // Part 1: a small matrix, end to end.
    let a = VectorSparseSpec {
        rows: 16,
        cols: 48,
        sparsity: 0.72,
        v: 2,
        dist: ValueDist::Ones,
        seed: 12,
    }
    .generate();

    println!(
        "input 16x48 at {:.0}% sparsity (v=2):",
        100.0 * a.sparsity()
    );
    for r in 0..a.rows {
        let line: String = (0..a.cols)
            .map(|c| if a.get(r, c).is_zero() { '.' } else { '#' })
            .collect();
        println!("  {line}");
    }

    let plan = ReorderPlan::build(&a, &JigsawConfig::v4(16));
    let strip = &plan.strips[0];
    println!(
        "\nBLOCK_TILE reorder: {} zero columns extracted, {} windows of 16, {} evictions",
        strip.zero_cols,
        strip.windows(),
        strip.evictions
    );
    for w in 0..strip.windows() {
        let cols: Vec<String> = (0..16)
            .map(|slot| match strip.col_order[w * 16 + slot] {
                PAD => "--".to_string(),
                c => format!("{c:02}"),
            })
            .collect();
        println!("  window {w}: columns [{}]", cols.join(" "));
        let tile = strip.tile(w, 0);
        println!(
            "    MMA_TILE perm (new<-src): {:?}, ldmatrix conflict pairs: {}",
            tile.perm, tile.conflict_pairs
        );
    }

    // Verify the reordered tiles really satisfy 2:4.
    let stats = plan.stats();
    println!(
        "\nreorder stats: success={}, computes {:.0}% of the dense K",
        stats.success,
        100.0 * stats.avg_k_fraction
    );

    // Part 2: the Figure-11-style sweep on this shape family.
    println!("\nsuccess-rate sweep (256x256, 5 seeds each):");
    println!("{:>9} {:>6} {:>6} {:>6}", "sparsity", "v=2", "v=4", "v=8");
    for sparsity in [0.70, 0.80, 0.90, 0.95] {
        let mut row = format!("{:>8.0}%", sparsity * 100.0);
        for v in [2usize, 4, 8] {
            let mut ok = 0;
            for seed in 0..5 {
                let m = VectorSparseSpec {
                    rows: 256,
                    cols: 256,
                    sparsity,
                    v,
                    dist: ValueDist::Ones,
                    seed: 900 + seed,
                }
                .generate();
                if ReorderPlan::build(&m, &JigsawConfig::v4(32))
                    .stats()
                    .success
                {
                    ok += 1;
                }
            }
            row.push_str(&format!(" {:>5.0}%", 100.0 * ok as f64 / 5.0));
        }
        println!("{row}");
    }
}
