//! Serving demo: stand up the batching, cache-backed inference service
//! over a small model zoo, drive it with concurrent closed-loop
//! clients, and read the serving report.
//!
//! ```text
//! cargo run --release --example serving_demo
//! ```

use std::sync::Arc;
use std::time::Duration;

use jigsaw::serve::{
    default_zoo, run_closed_loop, ModelRegistry, RegistryConfig, ServeConfig, Server,
};

fn main() {
    // A zoo of vector-sparse weight matrices — the stationary operands
    // the paper's one-time reorder amortizes over (§3.1).
    let zoo = default_zoo(7);
    let registry = Arc::new(
        ModelRegistry::new(RegistryConfig::default()).expect("no artifact dir configured"),
    );
    for m in &zoo {
        registry.register(&m.name, m.weights(), m.config);
        println!("registered {:<16} {}x{}", m.name, m.m(), m.k());
    }

    // Warm the plan cache up front so serving never pays the reorder.
    let cold = registry.warm_all().expect("zoo models plan");
    println!(
        "warmed {cold} plans in {:.1} ms",
        registry.stats().cold_host_ns as f64 / 1e6
    );

    // The serving engine: bounded admission queues, a 2 ms batching
    // window that coalesces concurrent requests along N, two workers.
    let server = Server::start(
        registry,
        ServeConfig {
            max_batch_n: 256,
            max_wait: Duration::from_millis(2),
            queue_cap: 64,
            workers: 2,
            ..ServeConfig::default()
        },
    );

    // Eight closed-loop clients, twelve requests each, mixed models and
    // widths — all seeded, so the traffic is reproducible.
    let results = run_closed_loop(&server, &zoo, 8, 12, &[8, 16, 32], 0xFEED);
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!("served {ok}/{} requests", results.len());
    if let Some(Ok(resp)) = results.iter().find(|r| r.is_ok()) {
        println!(
            "sample response: {}x{} C, batch of {} requests ({} cols), {:.0} cycles charged",
            resp.rows,
            resp.cols,
            resp.stats.batch_requests,
            resp.stats.batch_n,
            resp.stats.device_cycles,
        );
    }

    let cache = server.registry().stats();
    let metrics = server.shutdown();
    println!("\n{}", metrics.report("serving_demo", &cache));
}
