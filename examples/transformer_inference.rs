//! Transformer-layer inference scenario: prune the weight matrices of
//! one encoder layer at 90% vector sparsity and compare Jigsaw against
//! dense cuBLAS and the strongest sparse baseline for the whole layer.
//!
//! ```text
//! cargo run --release --example transformer_inference
//! ```

use baselines::{Clasp, CublasGemm, SpmmKernel};
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::JigsawSpmm;

/// The weight matrices of one Transformer encoder layer (d_model 1024,
/// FFN 4096), as (name, rows, cols).
const LAYER: &[(&str, usize, usize)] = &[
    ("W_q", 1024, 1024),
    ("W_k", 1024, 1024),
    ("W_v", 1024, 1024),
    ("W_o", 1024, 1024),
    ("W_ffn_up", 4096, 1024),
    ("W_ffn_down", 1024, 4096),
];

fn main() {
    let spec = GpuSpec::a100();
    let batch_tokens = 512; // N of every SpMM in the layer
    let sparsity = 0.90;
    let v = 8;

    println!(
        "Encoder layer at {:.0}% vector sparsity (v={v}), batch of {batch_tokens} tokens\n",
        sparsity * 100.0
    );
    println!(
        "{:<12} {:>9} {:>12} {:>12} {:>12} {:>8}",
        "weight", "shape", "cuBLAS(us)", "CLASP(us)", "Jigsaw(us)", "speedup"
    );

    let mut total = [0.0f64; 3];
    for (i, &(name, m, k)) in LAYER.iter().enumerate() {
        let a = VectorSparseSpec {
            rows: m,
            cols: k,
            sparsity,
            v,
            dist: ValueDist::Uniform,
            seed: 100 + i as u64,
        }
        .generate();

        let dense_us = CublasGemm::plan(&a)
            .simulate(batch_tokens, &spec)
            .duration_us;
        let clasp_us = Clasp::plan_best(&a, batch_tokens, &spec)
            .simulate(batch_tokens, &spec)
            .duration_us;
        let (jig, tune) =
            JigsawSpmm::plan_tuned(&a, batch_tokens, &spec).expect("candidates non-empty");
        let jig_us = jig.simulate(batch_tokens, &spec).duration_us;

        total[0] += dense_us;
        total[1] += clasp_us;
        total[2] += jig_us;
        println!(
            "{:<12} {:>4}x{:<4} {:>12.1} {:>12.1} {:>12.1} {:>7.2}x  (BLOCK_TILE={})",
            name,
            m,
            k,
            dense_us,
            clasp_us,
            jig_us,
            dense_us / jig_us,
            tune.block_tile_m
        );
    }

    println!(
        "\nlayer total: cuBLAS {:.1} us | CLASP {:.1} us | Jigsaw {:.1} us  ({:.2}x vs dense, {:.2}x vs CLASP)",
        total[0],
        total[1],
        total[2],
        total[0] / total[2],
        total[1] / total[2],
    );
}
