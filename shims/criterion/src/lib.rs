//! Offline stand-in for `criterion`.
//!
//! Provides the API surface the workspace's benches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! benchmark groups with `sample_size`/`throughput`,
//! `bench_with_input`, `BenchmarkId`) and measures each benchmark as a
//! plain mean over a few timed iterations — enough to compare orders
//! of magnitude offline, with none of criterion's statistics.

use std::fmt::Display;
use std::time::Instant;

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

/// Benchmark identifier: `function_id/parameter`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds `function_id/parameter`.
    pub fn new(function_id: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_id.into(), parameter),
        }
    }

    /// Builds from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Throughput annotation (accepted, not used in the report).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Runs one benchmark body repeatedly and records the mean.
pub struct Bencher {
    iters: u32,
    mean_seconds: Option<f64>,
}

impl Bencher {
    /// Times `f` over the configured iterations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up iteration, untimed.
        black_box(f());
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_seconds = Some(start.elapsed().as_secs_f64() / f64::from(self.iters));
    }
}

fn run_one(name: &str, sample_size: u32, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        iters: sample_size.max(1),
        mean_seconds: None,
    };
    f(&mut b);
    let mean = b.mean_seconds.unwrap_or(0.0);
    let (value, unit) = if mean >= 1.0 {
        (mean, "s")
    } else if mean >= 1e-3 {
        (mean * 1e3, "ms")
    } else if mean >= 1e-6 {
        (mean * 1e6, "us")
    } else {
        (mean * 1e9, "ns")
    };
    println!(
        "bench {name:<56} {value:>10.2} {unit}/iter ({} iters)",
        b.iters
    );
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, 10, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: u32,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the iteration count per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u32;
        self
    }

    /// Accepts a throughput annotation (ignored).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_one(&label, self.sample_size, &mut f);
        self
    }

    /// Runs a parameterized benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        let mut wrapped = |b: &mut Bencher| f(b, input);
        run_one(&label, self.sample_size, &mut wrapped);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
