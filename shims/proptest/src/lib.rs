//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use:
//! [`Strategy`] (sampling only — failing cases are *not* shrunk),
//! range/tuple/`Just`/`prop_map` strategies, [`collection::vec`],
//! [`sample::subsequence`], `any::<T>()`, `prop_oneof!`, and the
//! [`proptest!`] test macro with `#![proptest_config(..)]` support.
//!
//! Each generated test derives its RNG seed from the test's name, so
//! runs are deterministic across processes and machines; set the
//! `PROPTEST_SHIM_SEED` environment variable to perturb all tests at
//! once when hunting for new counterexamples.

use rand::prelude::*;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// Strategy combinators and the core trait.
pub mod strategy {
    use super::*;

    /// A generator of test values: the sampling-only core of proptest's
    /// `Strategy`.
    pub trait Strategy {
        /// The type of value produced.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let inner = self;
            BoxedStrategy {
                f: Rc::new(move |rng| inner.sample(rng)),
            }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn sample(&self, rng: &mut StdRng) -> U {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// A type-erased strategy.
    #[derive(Clone)]
    pub struct BoxedStrategy<T> {
        pub(crate) f: Rc<dyn Fn(&mut StdRng) -> T>,
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among equally-weighted strategies
    /// (what `prop_oneof!` builds).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds the union; panics when `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident : $idx:tt),+)),*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy!(
        (A: 0),
        (A: 0, B: 1),
        (A: 0, B: 1, C: 2),
        (A: 0, B: 1, C: 2, D: 3),
        (A: 0, B: 1, C: 2, D: 3, E: 4),
        (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
    );
}

use strategy::Strategy;

/// Types with a canonical full-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one value from the type's full domain.
    fn arbitrary_value(rng: &mut StdRng) -> Self;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut StdRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f64 {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        rng.gen::<f64>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary_value(rng: &mut StdRng) -> Self {
        rng.gen::<f32>()
    }
}

/// Full-domain strategy for `T` (proptest's `any`).
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary_value(rng)
    }
}

/// The canonical strategy for `T`'s full domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Inclusive element-count bounds for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut StdRng) -> usize {
        rng.gen_range(self.lo..=self.hi)
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange { lo: r.start, hi: r.end - 1 }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange { lo: *r.start(), hi: *r.end() }
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::{SizeRange, StdRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Output of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies over fixed pools.
pub mod sample {
    use super::strategy::Strategy;
    use super::{Rng, SizeRange, StdRng};

    /// Strategy for an order-preserving random subsequence of `pool`
    /// whose length is drawn from `size`.
    pub fn subsequence<T: Clone>(
        pool: Vec<T>,
        size: impl Into<SizeRange>,
    ) -> Subsequence<T> {
        Subsequence {
            pool,
            size: size.into(),
        }
    }

    /// Output of [`subsequence`].
    pub struct Subsequence<T> {
        pool: Vec<T>,
        size: SizeRange,
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn sample(&self, rng: &mut StdRng) -> Vec<T> {
            let k = self.size.sample(rng).min(self.pool.len());
            // Floyd-style: mark k distinct indices, emit in pool order.
            let mut picked = vec![false; self.pool.len()];
            let mut chosen = 0;
            while chosen < k {
                let i = rng.gen_range(0..self.pool.len());
                if !picked[i] {
                    picked[i] = true;
                    chosen += 1;
                }
            }
            self.pool
                .iter()
                .zip(&picked)
                .filter(|(_, &p)| p)
                .map(|(v, _)| v.clone())
                .collect()
        }
    }
}

/// Test-runner configuration.
pub mod test_runner {
    /// How many cases each property runs (64 by default — the shim
    /// does not shrink, so failures print the raw case).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// Config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }
}

#[doc(hidden)]
pub mod __rt {
    pub use rand::prelude::{Rng, SeedableRng, StdRng};

    /// FNV-1a over the test name, mixed with an optional env override,
    /// giving every property its own deterministic stream.
    pub fn seed_for(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        if let Ok(extra) = std::env::var("PROPTEST_SHIM_SEED") {
            if let Ok(x) = extra.trim().parse::<u64>() {
                h ^= x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            }
        }
        h
    }
}

/// Runs each contained `fn name(arg in strategy, ..) { body }` as a
/// `#[test]` over `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            use $crate::__rt::SeedableRng as _;
            let __config = $cfg;
            let mut __rng =
                $crate::__rt::StdRng::seed_from_u64($crate::__rt::seed_for(stringify!($name)));
            $(let $arg = $crate::strategy::Strategy::boxed($strat);)+
            for __case in 0..__config.cases {
                $(let $arg =
                    $crate::strategy::Strategy::sample(&$arg, &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// `assert!` under a proptest-compatible name (no shrinking here).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)+) => { assert!($($t)+) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)+) => { assert_eq!($($t)+) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)+) => { assert_ne!($($t)+) };
}

/// Uniform choice among the listed strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// The conventional glob import.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Map, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use rand::prelude::StdRng;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(x in 0usize..10, (a, b) in (0i32..5, -3i32..=3)) {
            prop_assert!(x < 10);
            prop_assert!((0..5).contains(&a));
            prop_assert!((-3..=3).contains(&b));
        }

        #[test]
        fn mapped_vec(v in crate::collection::vec(0u8..4, 1..8).prop_map(|v| v.len())) {
            prop_assert!((1..8).contains(&v));
        }

        #[test]
        fn oneof_and_subsequence(
            w in prop_oneof![Just(1usize), Just(2), Just(4)],
            s in crate::sample::subsequence(vec![1, 2, 3, 4], 0..=2),
        ) {
            prop_assert!([1usize, 2, 4].contains(&w));
            prop_assert!(s.len() <= 2);
            prop_assert!(s.windows(2).all(|p| p[0] < p[1]), "order preserved");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use crate::__rt::*;
        let strat = crate::collection::vec(0u32..1000, 10);
        let mut r1 = StdRng::seed_from_u64(seed_for("x"));
        let mut r2 = StdRng::seed_from_u64(seed_for("x"));
        assert_eq!(strat.sample(&mut r1), strat.sample(&mut r2));
    }
}
