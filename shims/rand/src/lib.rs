//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no crates-io access, so
//! the real `rand` cannot be downloaded. This shim implements exactly
//! the API subset the workspace uses — `StdRng::seed_from_u64`,
//! `Rng::{gen_range, gen_bool, gen}`, and `SliceRandom::{shuffle,
//! choose}` — over xoshiro256\*\* seeded through SplitMix64.
//!
//! Streams differ from the real `rand`'s `StdRng` (which is ChaCha12),
//! but every consumer in this workspace only requires a deterministic
//! seeded stream, not a specific one.

use std::ops::{Range, RangeInclusive};

/// Core random source: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// xoshiro256** — small, fast, and plenty for test-data generation.
#[derive(Clone, Debug)]
pub struct StdRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        StdRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// A range the generator can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one value.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let unit = (rng.next_u64() >> 11) as $t / (1u64 << 53) as $t;
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = (rng.next_u64() >> 11) as $t / ((1u64 << 53) - 1) as $t;
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Types `Rng::gen` can produce uniformly over their whole domain.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 / (1u32 << 24) as f32
    }
}

/// Convenience sampling methods, blanket-implemented for any source.
pub trait Rng: RngCore {
    /// Uniform draw from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Bernoulli draw.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::draw(self) < p
    }

    /// Uniform draw over a type's full domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Slice shuffling and selection.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Fisher–Yates shuffle.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    pub use crate::StdRng;
}

/// The conventional glob import.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&v));
            let u = rng.gen_range(0..16);
            assert!((0..16).contains(&u));
            let f = rng.gen_range(-1.0f32..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely to be identity");
    }
}
