//! Offline stand-in for `rayon`.
//!
//! `par_iter()` / `into_par_iter()` return ordinary sequential `std`
//! iterators, so every downstream adapter (`map`, `for_each`,
//! `collect`, `sum`, …) is just the `Iterator` trait. Semantically
//! identical to rayon for the order-independent uses in this workspace;
//! only the wall-clock parallel speedup is lost. `join` runs both
//! closures on real threads so intentionally-parallel callers still
//! overlap.

/// Parallel-iterator entry points (sequential here).
pub mod iter {
    /// Borrowing counterpart of rayon's `par_iter`.
    pub trait IntoParallelRefIterator<'data> {
        /// Item yielded by the iterator.
        type Item: 'data;
        /// Iterator type returned.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for `rayon`'s parallel borrow iterator.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = &'data T;
        type Iter = std::slice::Iter<'data, T>;

        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    /// Mutable counterpart of rayon's `par_iter_mut`.
    pub trait IntoParallelRefMutIterator<'data> {
        /// Item yielded by the iterator.
        type Item: 'data;
        /// Iterator type returned.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for `rayon`'s parallel mutable iterator.
        fn par_iter_mut(&'data mut self) -> Self::Iter;
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for [T] {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    impl<'data, T: 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
        type Item = &'data mut T;
        type Iter = std::slice::IterMut<'data, T>;

        fn par_iter_mut(&'data mut self) -> Self::Iter {
            self.iter_mut()
        }
    }

    /// Consuming counterpart of rayon's `into_par_iter`.
    pub trait IntoParallelIterator {
        /// Item yielded by the iterator.
        type Item;
        /// Iterator type returned.
        type Iter: Iterator<Item = Self::Item>;

        /// Sequential stand-in for `rayon`'s consuming parallel iterator.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Item = I::Item;
        type Iter = I::IntoIter;

        fn into_par_iter(self) -> Self::Iter {
            self.into_iter()
        }
    }
}

/// Runs both closures, each on its own thread, and returns both
/// results — the one primitive where this shim is genuinely parallel.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// The conventional glob import.
pub mod prelude {
    pub use crate::iter::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sequential_chains_compose() {
        let v = vec![1u32, 2, 3, 4];
        let doubled: Vec<u32> = v.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6, 8]);
        let sum: u32 = v.into_par_iter().sum();
        assert_eq!(sum, 10);
    }

    #[test]
    fn join_returns_both() {
        let (a, b) = super::join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }
}
