//! Offline stand-in for `serde`.
//!
//! The workspace only ever serializes report structures to JSON (via
//! `serde_json::to_string_pretty` / `to_value`), so this shim collapses
//! serde's zero-copy data model into one owned [`Value`] tree:
//! [`Serialize`] renders a type into a `Value`, and the companion
//! `serde_json` shim pretty-prints it. `Deserialize` is a marker trait
//! — nothing in the workspace deserializes through serde (the on-disk
//! weight format has its own hand-rolled codec in
//! `jigsaw_core::serialize`).
//!
//! The derive macros live in the sibling `serde_derive` shim and handle
//! structs with named fields, tuple structs, unit enums, and enums with
//! struct/tuple variants — the shapes this workspace actually derives.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};

/// An owned JSON-like value — the entire data model of this shim.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (distinct so `u64::MAX` survives).
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    String(String),
    /// Array.
    Array(Vec<Value>),
    /// Object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

/// Renders `self` into the shim's [`Value`] data model.
pub trait Serialize {
    /// The rendered value.
    fn to_value(&self) -> Value;
}

/// Marker for types the real serde would deserialize. No consumer in
/// this workspace deserializes through serde, so there is nothing to
/// implement.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::Int(*self as i64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::UInt(*self as u64) }
        }
        impl Deserialize for $t {}
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}
impl Deserialize for char {}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}
impl Deserialize for String {}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize, const N: usize> Deserialize for [T; N] {}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sorted for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

macro_rules! ser_tuple {
    ($(($($name:ident : $idx:tt),+)),*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {}
    )*};
}

ser_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5)
);

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
