//! Offline stand-in for `serde_derive`.
//!
//! Hand-parses the derive input (no `syn`/`quote` available offline)
//! and emits an implementation of the shimmed `serde::Serialize` /
//! `serde::Deserialize` traits. Supports the item shapes this
//! workspace derives on: structs with named fields, tuple structs,
//! and enums with unit / tuple / struct variants. Generic types are
//! rejected with a compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    TupleStruct { name: String, arity: usize },
    UnitStruct { name: String },
    Enum { name: String, variants: Vec<Variant> },
}

enum Variant {
    Unit(String),
    Tuple(String, usize),
    Struct(String, Vec<String>),
}

/// Derives the shim's `serde::Serialize` (renders into `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated impl parses"),
        Err(msg) => error(&msg),
    }
}

/// Derives the shim's `serde::Deserialize` (a marker trait).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => {
            let name = match &item {
                Item::NamedStruct { name, .. }
                | Item::TupleStruct { name, .. }
                | Item::UnitStruct { name }
                | Item::Enum { name, .. } => name,
            };
            format!("impl ::serde::Deserialize for {name} {{}}")
                .parse()
                .expect("generated impl parses")
        }
        Err(msg) => error(&msg),
    }
}

fn error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("error tokens parse")
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip attributes and visibility to reach `struct` / `enum`.
    let kind = loop {
        match tokens.get(i) {
            None => return Err("serde shim: no struct/enum found".into()),
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 2; // `#` + bracket group
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    i += 1;
                    break s;
                }
                i += 1; // `pub`, etc.
            }
            Some(_) => i += 1, // e.g. the `(crate)` of `pub(crate)`
        }
    };

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("serde shim: missing item name".into()),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!("serde shim: generic type `{name}` is not supported"));
    }

    if kind == "enum" {
        let body = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
            _ => return Err(format!("serde shim: enum `{name}` has no body")),
        };
        return Ok(Item::Enum {
            name,
            variants: parse_variants(body)?,
        });
    }

    match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::NamedStruct {
            fields: parse_named_fields(g.stream())?,
            name,
        }),
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok(Item::TupleStruct {
            arity: count_tuple_fields(g.stream()),
            name,
        }),
        Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Item::UnitStruct { name }),
        None => Ok(Item::UnitStruct { name }),
        _ => Err(format!("serde shim: unsupported struct body for `{name}`")),
    }
}

/// Skips one `#[...]` attribute if present; returns the new position.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> usize {
    while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        i += 2;
    }
    i
}

/// Consumes tokens of one type, stopping at a comma outside `<...>`.
/// Returns the index of the comma (or `tokens.len()`).
fn skip_type(tokens: &[TokenTree], mut i: usize) -> usize {
    let mut angle: i32 = 0;
    while let Some(t) = tokens.get(i) {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

fn parse_named_fields(body: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        // Visibility.
        if matches!(tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        fields.push(id.to_string());
        i += 1;
        if !matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("serde shim: expected `:` after field `{}`", fields.last().unwrap()));
        }
        i = skip_type(&tokens, i + 1);
        i += 1; // past the comma
    }
    Ok(fields)
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 0;
    let mut i = 0;
    while i < tokens.len() {
        i = skip_type(&tokens, i);
        count += 1;
        i += 1;
    }
    count
}

fn parse_variants(body: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        i = skip_attrs(&tokens, i);
        let Some(TokenTree::Ident(id)) = tokens.get(i) else {
            break;
        };
        let vname = id.to_string();
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                variants.push(Variant::Struct(vname, parse_named_fields(g.stream())?));
                i += 1;
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                variants.push(Variant::Tuple(vname, count_tuple_fields(g.stream())));
                i += 1;
            }
            _ => variants.push(Variant::Unit(vname)),
        }
        // Skip an optional discriminant, then the separating comma.
        while let Some(t) = tokens.get(i) {
            if matches!(t, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::NamedStruct { name, fields } => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f}))"
                    )
                })
                .collect();
            (name, format!("::serde::Value::Object(::std::vec![{}])", entries.join(", ")))
        }
        Item::TupleStruct { name, arity } => {
            let body = match arity {
                0 => "::serde::Value::Array(::std::vec![])".to_string(),
                1 => "::serde::Serialize::to_value(&self.0)".to_string(),
                n => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                }
            };
            (name, body)
        }
        Item::UnitStruct { name } => (
            name,
            format!("::serde::Value::String(::std::string::String::from({name:?}))"),
        ),
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| match v {
                    Variant::Unit(vn) => format!(
                        "{name}::{vn} => ::serde::Value::String(::std::string::String::from({vn:?}))"
                    ),
                    Variant::Tuple(vn, arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let inner = if *arity == 1 {
                            "::serde::Serialize::to_value(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(::std::vec![{}])", items.join(", "))
                        };
                        format!(
                            "{name}::{vn}({}) => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), {inner})])",
                            binds.join(", ")
                        )
                    }
                    Variant::Struct(vn, fields) => {
                        let entries: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(::std::string::String::from({f:?}), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Object(::std::vec![(::std::string::String::from({vn:?}), ::serde::Value::Object(::std::vec![{}]))])",
                            fields.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(", ")))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{ fn to_value(&self) -> ::serde::Value {{ {body} }} }}"
    )
}
