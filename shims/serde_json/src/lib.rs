//! Offline stand-in for `serde_json`: renders the `serde` shim's
//! [`Value`] model to JSON text. Only the writing half is implemented —
//! nothing in this workspace parses JSON through serde.

pub use serde::Value;
use serde::Serialize;
use std::fmt;

/// Serialization error. The shim's rendering is infallible, so this
/// only exists to keep `serde_json`'s `Result` signatures.
#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Renders any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Pretty JSON text (two-space indent, like the real serde_json).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x == x.trunc() && x.abs() < 1e15 {
        // Match serde_json's `1.0` rendering for whole floats.
        out.push_str(&format!("{x:.1}"));
    } else {
        out.push_str(&format!("{x}"));
    }
}

fn write_value(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(x) => write_float(*x, out),
        Value::String(s) => write_escaped(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_value(item, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(indent, depth + 1, out);
                write_escaped(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, indent, depth + 1, out);
            }
            newline_indent(indent, depth, out);
            out.push('}');
        }
    }
}

fn newline_indent(indent: Option<usize>, depth: usize, out: &mut String) {
    if let Some(w) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(w * depth));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_values() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fig10".into())),
            (
                "points".into(),
                Value::Array(vec![Value::Float(1.5), Value::Int(-2), Value::UInt(7)]),
            ),
            ("ok".into(), Value::Bool(true)),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"fig10","points":[1.5,-2,7],"ok":true}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"points\": [\n    1.5,"));
    }

    #[test]
    fn escapes_strings() {
        let v = Value::String("a\"b\\c\nd".into());
        assert_eq!(to_string(&v).unwrap(), r#""a\"b\\c\nd""#);
    }
}
