//! # jigsaw — facade crate
//!
//! Re-exports the whole Jigsaw workspace behind one dependency:
//!
//! * [`core`](jigsaw_core) — the reorder, format, and kernel
//!   (`jigsaw::JigsawSpmm` is the main entry point),
//! * [`sptc`] — the Sparse Tensor Core functional emulation,
//! * [`sim`](gpu_sim) — the A100-class timing simulator,
//! * [`data`](dlmc) — the DLMC-style dataset substrate,
//! * [`baselines`] — the comparator kernels,
//! * [`serve`](jigsaw_serve) — the batching, cache-backed inference
//!   service layer (model registry, micro-batching server, and a
//!   deterministic serving simulator),
//! * [`obs`](jigsaw_obs) — the observability spine: hierarchical
//!   spans, counters/gauges, and text/JSON report sinks shared by the
//!   planner, simulator, and serving layer.
//!
//! Planning returns `Result` — malformed configs and inputs surface as
//! typed errors ([`ConfigError`], [`PlanError`]), never panics:
//!
//! ```
//! use jigsaw::{JigsawConfig, JigsawSpmm};
//! use jigsaw::data::{dense_rhs, ValueDist, VectorSparseSpec};
//!
//! let a = VectorSparseSpec::new(128, 256, 0.9, 4, 1).generate();
//! let b = dense_rhs(256, 32, ValueDist::SmallInt, 2);
//! let config = JigsawConfig::builder().block_tile(32, 64).build()?;
//! let spmm = JigsawSpmm::plan(&a, config)?;
//! let run = spmm.run(&b, &jigsaw::sim::GpuSpec::a100());
//! assert_eq!(run.c, a.matmul_reference(&b));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub use baselines;
pub use dlmc as data;
pub use gpu_sim as sim;
pub use jigsaw_core as core;
pub use jigsaw_obs as obs;
pub use jigsaw_serve as serve;
pub use sptc;

pub use jigsaw_core::{
    execute_fast, execute_via_fragments, max_relative_error, CompiledKernel, ConfigBuilder,
    ConfigError, ExecOptions, JigsawConfig, JigsawFormat, JigsawSpmm, KernelKind, KernelPolicy,
    PlanError, PoolBuf, PoolStats, ReorderPlan, ReorderStats, SpmmRun, TuneReport, WorkspacePool,
};

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_compose() {
        let a = crate::data::VectorSparseSpec::new(32, 32, 0.8, 2, 1).generate();
        let spmm = crate::JigsawSpmm::plan(&a, crate::JigsawConfig::v4(16)).expect("valid plan");
        assert!(spmm.format.measured_bytes() > 0);
    }

    #[test]
    fn facade_exposes_obs_and_typed_errors() {
        let a = crate::data::VectorSparseSpec::new(32, 32, 0.8, 2, 1).generate();
        let err = crate::JigsawSpmm::plan(&a, crate::JigsawConfig::v4(40)).unwrap_err();
        assert!(matches!(err, crate::PlanError::Config(_)));
        let c = crate::obs::global().counter("facade.test");
        c.inc();
        assert!(c.get() >= 1);
    }
}
