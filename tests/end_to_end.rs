//! Cross-crate integration tests: dataset → reorder → format → both
//! execution paths → timing, plus agreement between Jigsaw and every
//! baseline on the same inputs.

use baselines::{Clasp, CublasGemm, Magicube, Sparta, SpmmKernel, Sputnik};
use dlmc::{dense_rhs, ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

fn workload(
    m: usize,
    k: usize,
    n: usize,
    sparsity: f64,
    v: usize,
    seed: u64,
) -> (dlmc::Matrix, dlmc::Matrix) {
    let a = VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity,
        v,
        dist: ValueDist::SmallInt,
        seed,
    }
    .generate();
    let b = dense_rhs(k, n, ValueDist::SmallInt, seed + 1);
    (a, b)
}

#[test]
fn every_kernel_computes_the_same_product() {
    let (a, b) = workload(64, 128, 32, 0.85, 4, 11);
    let reference = a.matmul_reference(&b);

    let jig = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    assert_eq!(jig.run(&b, &GpuSpec::a100()).c, reference, "Jigsaw");

    assert_eq!(CublasGemm::plan(&a).compute(&b), reference, "cuBLAS");
    assert_eq!(Sputnik::plan(&a).compute(&b), reference, "Sputnik");
    for pv in [2, 4, 8] {
        assert_eq!(Clasp::plan(&a, pv).compute(&b), reference, "CLASP pv={pv}");
    }
    assert_eq!(Magicube::plan(&a, 4).compute(&b), reference, "Magicube");
    assert_eq!(Sparta::plan(&a).compute(&b), reference, "SparTA");
}

#[test]
fn jigsaw_matches_reference_across_the_config_grid() {
    for (bt, sparsity, v) in [
        (16usize, 0.8, 2usize),
        (32, 0.9, 4),
        (64, 0.95, 8),
        (16, 0.98, 8),
        (64, 0.5, 2), // barely sparse: reorder "fails" but math must hold
    ] {
        let (a, b) = workload(64, 96, 24, sparsity, v, 31 + bt as u64);
        let reference = a.matmul_reference(&b);
        for config in [
            JigsawConfig::v0(),
            JigsawConfig::v1(),
            JigsawConfig::v2(),
            JigsawConfig::v3(),
            JigsawConfig::v4(bt),
        ] {
            // Versions only change the *timing model*, never the math.
            let mut cfg = config;
            cfg.block_tile_m = bt;
            let jig = JigsawSpmm::plan(&a, cfg).expect("valid tiling");
            assert_eq!(
                jigsaw_core::execute_fast(&jig.format, &b),
                reference,
                "bt={bt} s={sparsity} v={v} cfg={cfg:?}"
            );
        }
    }
}

#[test]
fn fragment_and_fast_paths_agree_with_metadata_interleave_on_and_off() {
    let (a, b) = workload(48, 64, 16, 0.9, 2, 77);
    for interleave in [false, true] {
        let mut cfg = JigsawConfig::v4(16);
        cfg.metadata_interleave = interleave;
        let jig = JigsawSpmm::plan(&a, cfg).expect("valid tiling");
        assert_eq!(
            jig.run_via_fragments(&b),
            jigsaw_core::execute_fast(&jig.format, &b),
            "interleave={interleave}"
        );
    }
}

#[test]
fn simulated_ordering_matches_the_papers_story() {
    // At high sparsity with wide vectors: Jigsaw < cuBLAS duration, and
    // the ablation versions are monotonically non-worsening.
    let spec = GpuSpec::a100();
    let (a, _) = workload(512, 512, 0, 0.95, 8, 5);
    let n = 256;
    let cublas = CublasGemm::plan(&a).simulate(n, &spec).duration_cycles;
    let mut last = f64::INFINITY;
    for config in [
        JigsawConfig::v0(),
        JigsawConfig::v1(),
        JigsawConfig::v2(),
        JigsawConfig::v3(),
    ] {
        let d = JigsawSpmm::plan(&a, config)
            .expect("valid tiling")
            .simulate(n, &spec)
            .duration_cycles;
        assert!(d <= last * 1.02, "{config:?} regressed: {d} after {last}");
        last = d;
    }
    let (tuned, _) = JigsawSpmm::plan_tuned(&a, n, &spec).expect("candidates non-empty");
    let v4 = tuned.simulate(n, &spec).duration_cycles;
    assert!(v4 <= last);
    assert!(v4 < cublas, "v4 {v4} should beat cuBLAS {cublas}");
}

#[test]
fn sparta_decomposition_consistent_with_jigsaw_on_dense_heavy_input() {
    // A half-dense matrix exercises SparTA's residual path and Jigsaw's
    // eviction machinery simultaneously.
    let (a, b) = workload(32, 64, 16, 0.5, 2, 91);
    let reference = a.matmul_reference(&b);
    assert_eq!(Sparta::plan(&a).compute(&b), reference);
    let jig = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    assert_eq!(jigsaw_core::execute_fast(&jig.format, &b), reference);
}

#[test]
fn smtx_roundtrip_feeds_the_pipeline() {
    // A matrix exported to DLMC's .smtx format and re-imported must
    // produce the same reorder plan statistics.
    let (a, _) = workload(64, 64, 0, 0.9, 4, 13);
    let pattern = dlmc::SmtxPattern::from_matrix(&a);
    let text = pattern.to_text();
    let back = dlmc::SmtxPattern::parse(&text).unwrap().to_matrix();
    assert_eq!(back.nnz(), a.nnz());
    let cfg = JigsawConfig::v4(32);
    let s1 = JigsawSpmm::plan(&a, cfg)
        .expect("valid tiling")
        .reorder_stats;
    let s2 = JigsawSpmm::plan(&back, cfg)
        .expect("valid tiling")
        .reorder_stats;
    assert_eq!(s1.total_windows, s2.total_windows);
    assert_eq!(s1.zero_cols_skipped, s2.zero_cols_skipped);
}

#[test]
fn venom_pruned_inputs_run_without_reordering_pressure() {
    let a = dlmc::venom_pruned(256, 256, 32, 2, 8, ValueDist::SmallInt, 17);
    assert!(sptc::matrix_satisfies_2_4(&a.data, a.cols));
    let jig = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    assert!(jig.reorder_stats.success);
    // The zero-column compaction packs the (within-strip dense) vector
    // columns together, so windows carry at most 8 live columns (2 per
    // quad) — fewer SpTC steps than the original metadata'd layout, at
    // the price of some reorder-retry churn during planning.
    assert!(
        jig.reorder_stats.avg_k_fraction <= 0.55,
        "compaction should halve the SpTC work: {}",
        jig.reorder_stats.avg_k_fraction
    );
    let b = dense_rhs(256, 32, ValueDist::SmallInt, 18);
    assert_eq!(
        jigsaw_core::execute_fast(&jig.format, &b),
        a.matmul_reference(&b)
    );
}
