//! End-to-end serving tests through the facade: a mixed model zoo, the
//! threaded batching server under concurrent submitters, the registry's
//! byte-budget eviction, and artifact corruption — all driven the way a
//! deployment would, via `jigsaw::serve`.

use std::sync::Arc;
use std::time::Duration;

use jigsaw::data::{dense_rhs, ValueDist};
use jigsaw::serve::{
    default_zoo, generate_schedule, generate_zipf_schedule, scaled_zoo, simulate_schedule,
    simulate_sharded, LoadSpec, ModelRegistry, RegistryConfig, RegistryError, ReplicationConfig,
    ServeConfig, Server, ShardConfig, ShardSimConfig, SimConfig, SimRequest, StealConfig,
    ZipfLoadSpec,
};
use jigsaw::sim::GpuSpec;

fn zoo_registry(seed: u64) -> Arc<ModelRegistry> {
    let reg = ModelRegistry::new(RegistryConfig::default()).unwrap();
    for m in default_zoo(seed) {
        reg.register(&m.name, m.weights(), m.config);
    }
    Arc::new(reg)
}

/// Concurrent submitters across the whole zoo: every batched response
/// must be bit-identical to running the same request alone against the
/// planned model — batching may never change the math.
#[test]
fn concurrent_batched_serving_matches_solo_reference() {
    let zoo = default_zoo(21);
    let registry = zoo_registry(21);
    registry.warm_all().unwrap();
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            max_batch_n: 128,
            max_wait: Duration::from_millis(2),
            queue_cap: 64,
            workers: 3,
            ..ServeConfig::default()
        },
    );

    // 4 clients × 8 requests, models and widths striped deterministically.
    let outcomes: Vec<(String, jigsaw::data::Matrix, Vec<f32>)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|client: usize| {
                let zoo = &zoo;
                let server = &server;
                scope.spawn(move || {
                    (0..8)
                        .map(|i| {
                            let model = &zoo[(client + i) % zoo.len()];
                            let n = [4, 8, 16][(client * 3 + i) % 3];
                            let b = dense_rhs(
                                model.k(),
                                n,
                                ValueDist::SmallInt,
                                (client * 100 + i) as u64,
                            );
                            let resp = server
                                .submit(&model.name, b.clone())
                                .expect("admitted")
                                .wait()
                                .expect("served");
                            assert_eq!((resp.rows, resp.cols), (model.m(), n));
                            (model.name.clone(), b, resp.c)
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });

    let metrics = server.shutdown();
    assert_eq!(metrics.completed, 32);
    assert_eq!(metrics.rejected, 0);
    for (model, b, served) in &outcomes {
        let planned = registry.get(model).unwrap();
        assert_eq!(&planned.execute(b), served, "solo reference for {model}");
    }
}

/// The registry honors its byte budget: with room for only one planned
/// model, alternating fetches evict, and the counters say so.
#[test]
fn registry_eviction_respects_byte_budget() {
    let probe = zoo_registry(33);
    let a = probe.get("attention-small").unwrap().artifact_bytes;
    let b = probe.get("embedding-proj").unwrap().artifact_bytes;
    let budget = a.max(b);

    let reg = ModelRegistry::new(RegistryConfig {
        budget_bytes: budget,
        artifact_dir: None,
        exec_options: Default::default(),
    })
    .unwrap();
    for m in default_zoo(33).into_iter().take(2) {
        reg.register(&m.name, m.weights(), m.config);
    }
    for _ in 0..3 {
        reg.get("attention-small").unwrap();
        reg.get("embedding-proj").unwrap();
        assert!(reg.stats().resident_bytes <= budget, "budget respected");
    }
    let s = reg.stats();
    assert_eq!(s.resident_models, 1, "only one model fits");
    assert!(s.evictions >= 5, "alternating fetches keep evicting");
    assert_eq!(s.misses, 6, "every fetch re-plans after eviction");
    assert_eq!(s.hits, 0);
    assert_eq!(s.hit_rate(), 0.0);

    // The same traffic with an unbounded budget is all hits after warm-up.
    let roomy = zoo_registry(33);
    for _ in 0..3 {
        roomy.get("attention-small").unwrap();
        roomy.get("embedding-proj").unwrap();
    }
    let s = roomy.stats();
    assert_eq!((s.hits, s.misses, s.evictions), (4, 2, 0));
}

/// A corrupt on-disk artifact surfaces as a typed error on fetch —
/// never a panic, never a bad plan.
#[test]
fn corrupt_artifact_is_rejected_end_to_end() {
    let dir = std::env::temp_dir().join("jigsaw-serving-e2e-corrupt");
    let _ = std::fs::remove_dir_all(&dir);
    let reg = ModelRegistry::new(RegistryConfig {
        budget_bytes: usize::MAX,
        artifact_dir: Some(dir.clone()),
        exec_options: Default::default(),
    })
    .unwrap();
    for m in default_zoo(44).into_iter().take(1) {
        reg.register(&m.name, m.weights(), m.config);
    }
    reg.warm_all().unwrap();
    reg.drop_resident();

    let path = dir.join("attention-small.jgsw");
    let mut bytes = std::fs::read(&path).unwrap();
    for b in bytes.iter_mut().skip(40).take(64) {
        *b ^= 0xA5;
    }
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        reg.fetch("attention-small"),
        Err(RegistryError::Io(_))
    ));

    // Removing the bad artifact recovers by re-planning.
    std::fs::remove_file(&path).unwrap();
    assert!(reg.fetch("attention-small").is_ok());
    let _ = std::fs::remove_dir_all(&dir);
}

/// The virtual-clock serving simulator reproduces the experiment's
/// headline: batching strictly beats one-kernel-per-request on the
/// same open-loop schedule.
#[test]
fn simulated_batching_beats_unbatched_on_mixed_traffic() {
    let spec = GpuSpec::a100();
    let schedule = generate_schedule(
        &default_zoo(55),
        &LoadSpec {
            requests: 48,
            seed: 0xE2E,
            n_choices: vec![8, 16],
            mean_gap_cycles: 1_500.0,
        },
    );

    let warm = zoo_registry(55);
    warm.warm_all().unwrap();
    let batched = simulate_schedule(
        &warm,
        &schedule,
        &SimConfig::batched(spec.clone(), 256, 50_000.0),
    );

    let warm2 = zoo_registry(55);
    warm2.warm_all().unwrap();
    let unbatched = simulate_schedule(&warm2, &schedule, &SimConfig::unbatched(spec));

    assert_eq!(batched.completions.len(), 48);
    assert_eq!(unbatched.completions.len(), 48);
    assert!(batched.metrics.conserves() && unbatched.metrics.conserves());
    assert!(batched.metrics.batches < unbatched.metrics.batches);
    assert!(
        batched.requests_per_gcycle() > unbatched.requests_per_gcycle(),
        "batched {:.0} vs unbatched {:.0} req/Gcycle",
        batched.requests_per_gcycle(),
        unbatched.requests_per_gcycle()
    );
}

/// Sharded serving end to end (DESIGN.md §14): the zipf load generator
/// and the multi-shard simulator are deterministic per `(seed, shard
/// count)` — same seed ⇒ bit-identical schedule and bit-identical
/// percentiles — and adding shards at the same offered load strictly
/// improves the tail.
#[test]
fn sharded_zipf_serving_is_deterministic_and_scales() {
    let zoo = scaled_zoo(8, 66);
    let registry = ModelRegistry::new(RegistryConfig {
        budget_bytes: 1 << 30,
        ..RegistryConfig::default()
    })
    .unwrap();
    for m in &zoo {
        registry.register(&m.name, m.weights(), m.config);
    }
    registry.warm_all().unwrap();

    let load = ZipfLoadSpec {
        requests: 600,
        users: 100_000,
        seed: 0xE2E5,
        mean_gap_cycles: 300.0,
        ..ZipfLoadSpec::default()
    };
    // Identical schedule from an identical seed, down to user ids.
    let a = generate_zipf_schedule(&zoo, &load);
    let b = generate_zipf_schedule(&zoo, &load);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.user, y.user);
        assert_eq!(x.req.model, y.req.model);
        assert_eq!(
            x.req.arrival_cycle.to_bits(),
            y.req.arrival_cycle.to_bits(),
            "arrivals replay bit-exactly"
        );
    }
    let schedule: Vec<SimRequest> = a.into_iter().map(|z| z.req).collect();

    let cfg = |shards: usize| {
        ShardSimConfig::new(
            ShardConfig::new(shards)
                .with_replication(ReplicationConfig::cycles(32, 2, 1_000_000.0))
                .with_steal(StealConfig::threshold(8)),
            SimConfig::batched(GpuSpec::a100(), 128, 20_000.0),
        )
    };
    // Same seed + shard count ⇒ identical sim percentiles, bit for bit.
    let one = simulate_sharded(&registry, &schedule, &cfg(1));
    let one_again = simulate_sharded(&registry, &schedule, &cfg(1));
    for p in [50.0, 95.0, 99.0] {
        assert_eq!(
            one.latency_cycles.percentile(p).to_bits(),
            one_again.latency_cycles.percentile(p).to_bits(),
            "p{p} replays bit-exactly"
        );
    }
    assert_eq!(
        one.makespan_cycles.to_bits(),
        one_again.makespan_cycles.to_bits()
    );

    // More shards at the same offered load: strictly better tail.
    let four = simulate_sharded(&registry, &schedule, &cfg(4));
    assert!(one.totals.conserves() && four.totals.conserves());
    assert_eq!(four.totals.completed, one.totals.completed, "same load");
    assert!(
        four.latency_cycles.percentile(99.0) < one.latency_cycles.percentile(99.0),
        "4-shard p99 {:.0} vs 1-shard p99 {:.0}",
        four.latency_cycles.percentile(99.0),
        one.latency_cycles.percentile(99.0)
    );
}
