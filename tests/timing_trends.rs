//! Integration tests of the *timing-model* claims — the qualitative
//! shapes the paper's evaluation reports, asserted end-to-end across
//! crates. (Functional correctness lives in `end_to_end.rs`.)

use baselines::{Clasp, CublasGemm, Magicube, Sparta, SpmmKernel, Sputnik};
use dlmc::{ValueDist, VectorSparseSpec};
use gpu_sim::GpuSpec;
use jigsaw_core::{JigsawConfig, JigsawSpmm};

fn gen(m: usize, k: usize, sparsity: f64, v: usize, seed: u64) -> dlmc::Matrix {
    VectorSparseSpec {
        rows: m,
        cols: k,
        sparsity,
        v,
        dist: ValueDist::Ones,
        seed,
    }
    .generate()
}

fn jigsaw_cycles(a: &dlmc::Matrix, n: usize, spec: &GpuSpec) -> f64 {
    JigsawSpmm::plan_tuned(a, n, spec)
        .expect("candidates non-empty")
        .0
        .simulate(n, spec)
        .duration_cycles
}

#[test]
fn speedup_grows_with_sparsity() {
    // Paper Table 2, column cuBLAS: monotone in sparsity at fixed v.
    let spec = GpuSpec::a100();
    let n = 512;
    let mut last = 0.0;
    for sparsity in [0.80, 0.90, 0.95, 0.98] {
        let a = gen(1024, 1024, sparsity, 8, 3);
        let cublas = CublasGemm::plan(&a).simulate(n, &spec).duration_cycles;
        let speedup = cublas / jigsaw_cycles(&a, n, &spec);
        assert!(
            speedup > last,
            "speedup not monotone at {sparsity}: {speedup} after {last}"
        );
        last = speedup;
    }
    assert!(last > 2.0, "98% v8 speedup too small: {last}");
}

#[test]
fn speedup_grows_with_vector_width() {
    // Paper §4.2: larger v -> more zero columns -> bigger speedups.
    let spec = GpuSpec::a100();
    let n = 512;
    let mut last = 0.0;
    for v in [2usize, 4, 8] {
        let a = gen(1024, 1024, 0.95, v, 4);
        let cublas = CublasGemm::plan(&a).simulate(n, &spec).duration_cycles;
        let speedup = cublas / jigsaw_cycles(&a, n, &spec);
        assert!(speedup > last, "v={v}: {speedup} after {last}");
        last = speedup;
    }
}

#[test]
fn jigsaw_beats_every_sparse_baseline_at_95_v8() {
    let spec = GpuSpec::a100();
    let a = gen(1024, 1024, 0.95, 8, 5);
    let n = 512;
    let tj = jigsaw_cycles(&a, n, &spec);
    let baselines: Vec<(&str, f64)> = vec![
        (
            "CLASP",
            Clasp::plan_best(&a, n, &spec)
                .simulate(n, &spec)
                .duration_cycles,
        ),
        (
            "Magicube",
            Magicube::plan(&a, 8).simulate(n, &spec).duration_cycles,
        ),
        (
            "Sputnik",
            Sputnik::plan(&a).simulate(n, &spec).duration_cycles,
        ),
        (
            "SparTA",
            Sparta::plan(&a).simulate(n, &spec).duration_cycles,
        ),
    ];
    for (name, t) in baselines {
        assert!(
            t / tj >= 0.9,
            "{name} unexpectedly beats Jigsaw: {}",
            t / tj
        );
    }
}

#[test]
fn sputnik_trails_cublas_at_80_percent() {
    // Paper §4.2: Sputnik reaches cuBLAS parity only near 98%.
    let spec = GpuSpec::a100();
    let a = gen(1024, 1024, 0.80, 4, 6);
    let n = 512;
    let cublas = CublasGemm::plan(&a).simulate(n, &spec).duration_cycles;
    let sputnik = Sputnik::plan(&a).simulate(n, &spec).duration_cycles;
    assert!(
        sputnik > cublas,
        "Sputnik {sputnik} should trail cuBLAS {cublas} at 80%"
    );
}

#[test]
fn block_tile_16_wins_at_extreme_sparsity() {
    // Paper §4.4 (v4): smaller BLOCK_TILE skips more at high sparsity.
    let spec = GpuSpec::a100();
    let a = gen(1024, 1024, 0.98, 8, 7);
    let (_, report) = JigsawSpmm::plan_tuned(&a, 512, &spec).expect("candidates non-empty");
    assert_eq!(
        report.block_tile_m, 16,
        "tuning picked {} (candidates {:?})",
        report.block_tile_m, report.candidate_cycles
    );
}

#[test]
fn duration_roughly_linear_in_n() {
    // Figure 10's x-axis behaviour: doubling N shouldn't more than
    // ~2.5x the duration nor leave it flat once the device is filled.
    let spec = GpuSpec::a100();
    let a = gen(1024, 1024, 0.9, 4, 8);
    let spmm = JigsawSpmm::plan(&a, JigsawConfig::v4(32)).expect("valid tiling");
    let t512 = spmm.simulate(512, &spec).duration_cycles;
    let t1024 = spmm.simulate(1024, &spec).duration_cycles;
    let ratio = t1024 / t512;
    assert!(
        (1.2..=2.6).contains(&ratio),
        "N-scaling ratio {ratio} out of range"
    );
}

#[test]
fn ablation_counters_move_the_right_way() {
    // Condensed Fig 12 mechanism check on one workload.
    let spec = GpuSpec::a100();
    let a = gen(512, 1024, 0.95, 8, 9);
    let n = 256;
    let s0 = JigsawSpmm::plan(&a, JigsawConfig::v0())
        .unwrap()
        .simulate(n, &spec);
    let s1 = JigsawSpmm::plan(&a, JigsawConfig::v1())
        .unwrap()
        .simulate(n, &spec);
    let s2 = JigsawSpmm::plan(&a, JigsawConfig::v2())
        .unwrap()
        .simulate(n, &spec);
    let s3 = JigsawSpmm::plan(&a, JigsawConfig::v3())
        .unwrap()
        .simulate(n, &spec);
    // v1 kills bank conflicts.
    assert!(s0.totals.smem_bank_conflicts > 100 * s1.totals.smem_bank_conflicts.max(1));
    // v2 cuts long-scoreboard pressure.
    assert!(s2.long_scoreboard_per_instr < s1.long_scoreboard_per_instr);
    // v3 issues fewer shared-memory instructions.
    assert!(s3.totals.smem_instructions < s2.totals.smem_instructions);
}
